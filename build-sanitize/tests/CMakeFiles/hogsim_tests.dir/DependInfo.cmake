
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/exp_test.cc" "tests/CMakeFiles/hogsim_tests.dir/exp_test.cc.o" "gcc" "tests/CMakeFiles/hogsim_tests.dir/exp_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/hogsim_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/hogsim_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/grid_test.cc" "tests/CMakeFiles/hogsim_tests.dir/grid_test.cc.o" "gcc" "tests/CMakeFiles/hogsim_tests.dir/grid_test.cc.o.d"
  "/root/repo/tests/hdfs_test.cc" "tests/CMakeFiles/hogsim_tests.dir/hdfs_test.cc.o" "gcc" "tests/CMakeFiles/hogsim_tests.dir/hdfs_test.cc.o.d"
  "/root/repo/tests/hog_test.cc" "tests/CMakeFiles/hogsim_tests.dir/hog_test.cc.o" "gcc" "tests/CMakeFiles/hogsim_tests.dir/hog_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/hogsim_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/hogsim_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/mapreduce_test.cc" "tests/CMakeFiles/hogsim_tests.dir/mapreduce_test.cc.o" "gcc" "tests/CMakeFiles/hogsim_tests.dir/mapreduce_test.cc.o.d"
  "/root/repo/tests/namenode_failover_test.cc" "tests/CMakeFiles/hogsim_tests.dir/namenode_failover_test.cc.o" "gcc" "tests/CMakeFiles/hogsim_tests.dir/namenode_failover_test.cc.o.d"
  "/root/repo/tests/net_test.cc" "tests/CMakeFiles/hogsim_tests.dir/net_test.cc.o" "gcc" "tests/CMakeFiles/hogsim_tests.dir/net_test.cc.o.d"
  "/root/repo/tests/placement_property_test.cc" "tests/CMakeFiles/hogsim_tests.dir/placement_property_test.cc.o" "gcc" "tests/CMakeFiles/hogsim_tests.dir/placement_property_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/hogsim_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/hogsim_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/hogsim_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/hogsim_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/hogsim_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/hogsim_tests.dir/util_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/hogsim_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/hogsim_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/CMakeFiles/hogsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
