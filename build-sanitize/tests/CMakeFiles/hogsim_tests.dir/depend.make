# Empty dependencies file for hogsim_tests.
# This may be replaced when dependencies are built.
