file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_cluster.dir/bench_table3_cluster.cc.o"
  "CMakeFiles/bench_table3_cluster.dir/bench_table3_cluster.cc.o.d"
  "bench_table3_cluster"
  "bench_table3_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
