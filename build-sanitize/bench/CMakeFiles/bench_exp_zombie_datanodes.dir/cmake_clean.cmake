file(REMOVE_RECURSE
  "CMakeFiles/bench_exp_zombie_datanodes.dir/bench_exp_zombie_datanodes.cc.o"
  "CMakeFiles/bench_exp_zombie_datanodes.dir/bench_exp_zombie_datanodes.cc.o.d"
  "bench_exp_zombie_datanodes"
  "bench_exp_zombie_datanodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp_zombie_datanodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
