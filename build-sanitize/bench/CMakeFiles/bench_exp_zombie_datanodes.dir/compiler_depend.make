# Empty compiler generated dependencies file for bench_exp_zombie_datanodes.
# This may be replaced when dependencies are built.
