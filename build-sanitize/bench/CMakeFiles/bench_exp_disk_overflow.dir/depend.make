# Empty dependencies file for bench_exp_disk_overflow.
# This may be replaced when dependencies are built.
