file(REMOVE_RECURSE
  "CMakeFiles/bench_exp_disk_overflow.dir/bench_exp_disk_overflow.cc.o"
  "CMakeFiles/bench_exp_disk_overflow.dir/bench_exp_disk_overflow.cc.o.d"
  "bench_exp_disk_overflow"
  "bench_exp_disk_overflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp_disk_overflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
