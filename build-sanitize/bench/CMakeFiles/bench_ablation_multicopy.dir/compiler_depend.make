# Empty compiler generated dependencies file for bench_ablation_multicopy.
# This may be replaced when dependencies are built.
