file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multicopy.dir/bench_ablation_multicopy.cc.o"
  "CMakeFiles/bench_ablation_multicopy.dir/bench_ablation_multicopy.cc.o.d"
  "bench_ablation_multicopy"
  "bench_ablation_multicopy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multicopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
