file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_fluctuation.dir/bench_fig5_fluctuation.cc.o"
  "CMakeFiles/bench_fig5_fluctuation.dir/bench_fig5_fluctuation.cc.o.d"
  "bench_fig5_fluctuation"
  "bench_fig5_fluctuation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_fluctuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
