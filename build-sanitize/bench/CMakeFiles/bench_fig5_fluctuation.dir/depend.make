# Empty dependencies file for bench_fig5_fluctuation.
# This may be replaced when dependencies are built.
