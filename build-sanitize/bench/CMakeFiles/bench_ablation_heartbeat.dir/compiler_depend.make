# Empty compiler generated dependencies file for bench_ablation_heartbeat.
# This may be replaced when dependencies are built.
