file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_heartbeat.dir/bench_ablation_heartbeat.cc.o"
  "CMakeFiles/bench_ablation_heartbeat.dir/bench_ablation_heartbeat.cc.o.d"
  "bench_ablation_heartbeat"
  "bench_ablation_heartbeat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_heartbeat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
