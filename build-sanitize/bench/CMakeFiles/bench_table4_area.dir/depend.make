# Empty dependencies file for bench_table4_area.
# This may be replaced when dependencies are built.
