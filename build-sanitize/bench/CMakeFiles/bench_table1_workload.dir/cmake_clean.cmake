file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_workload.dir/bench_table1_workload.cc.o"
  "CMakeFiles/bench_table1_workload.dir/bench_table1_workload.cc.o.d"
  "bench_table1_workload"
  "bench_table1_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
