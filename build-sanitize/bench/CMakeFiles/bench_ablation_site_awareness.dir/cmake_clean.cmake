file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_site_awareness.dir/bench_ablation_site_awareness.cc.o"
  "CMakeFiles/bench_ablation_site_awareness.dir/bench_ablation_site_awareness.cc.o.d"
  "bench_ablation_site_awareness"
  "bench_ablation_site_awareness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_site_awareness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
