# Empty dependencies file for bench_ablation_site_awareness.
# This may be replaced when dependencies are built.
