file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_truncated.dir/bench_table2_truncated.cc.o"
  "CMakeFiles/bench_table2_truncated.dir/bench_table2_truncated.cc.o.d"
  "bench_table2_truncated"
  "bench_table2_truncated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_truncated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
