# Empty dependencies file for bench_table2_truncated.
# This may be replaced when dependencies are built.
