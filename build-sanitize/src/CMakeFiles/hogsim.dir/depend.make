# Empty dependencies file for hogsim.
# This may be replaced when dependencies are built.
