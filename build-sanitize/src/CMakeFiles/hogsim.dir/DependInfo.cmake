
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/dedicated_cluster.cc" "src/CMakeFiles/hogsim.dir/baseline/dedicated_cluster.cc.o" "gcc" "src/CMakeFiles/hogsim.dir/baseline/dedicated_cluster.cc.o.d"
  "/root/repo/src/exp/sweep.cc" "src/CMakeFiles/hogsim.dir/exp/sweep.cc.o" "gcc" "src/CMakeFiles/hogsim.dir/exp/sweep.cc.o.d"
  "/root/repo/src/grid/condor.cc" "src/CMakeFiles/hogsim.dir/grid/condor.cc.o" "gcc" "src/CMakeFiles/hogsim.dir/grid/condor.cc.o.d"
  "/root/repo/src/grid/grid.cc" "src/CMakeFiles/hogsim.dir/grid/grid.cc.o" "gcc" "src/CMakeFiles/hogsim.dir/grid/grid.cc.o.d"
  "/root/repo/src/hdfs/balancer.cc" "src/CMakeFiles/hogsim.dir/hdfs/balancer.cc.o" "gcc" "src/CMakeFiles/hogsim.dir/hdfs/balancer.cc.o.d"
  "/root/repo/src/hdfs/datanode.cc" "src/CMakeFiles/hogsim.dir/hdfs/datanode.cc.o" "gcc" "src/CMakeFiles/hogsim.dir/hdfs/datanode.cc.o.d"
  "/root/repo/src/hdfs/dfs_client.cc" "src/CMakeFiles/hogsim.dir/hdfs/dfs_client.cc.o" "gcc" "src/CMakeFiles/hogsim.dir/hdfs/dfs_client.cc.o.d"
  "/root/repo/src/hdfs/namenode.cc" "src/CMakeFiles/hogsim.dir/hdfs/namenode.cc.o" "gcc" "src/CMakeFiles/hogsim.dir/hdfs/namenode.cc.o.d"
  "/root/repo/src/hdfs/placement.cc" "src/CMakeFiles/hogsim.dir/hdfs/placement.cc.o" "gcc" "src/CMakeFiles/hogsim.dir/hdfs/placement.cc.o.d"
  "/root/repo/src/hog/hog_cluster.cc" "src/CMakeFiles/hogsim.dir/hog/hog_cluster.cc.o" "gcc" "src/CMakeFiles/hogsim.dir/hog/hog_cluster.cc.o.d"
  "/root/repo/src/mapreduce/history.cc" "src/CMakeFiles/hogsim.dir/mapreduce/history.cc.o" "gcc" "src/CMakeFiles/hogsim.dir/mapreduce/history.cc.o.d"
  "/root/repo/src/mapreduce/jobtracker.cc" "src/CMakeFiles/hogsim.dir/mapreduce/jobtracker.cc.o" "gcc" "src/CMakeFiles/hogsim.dir/mapreduce/jobtracker.cc.o.d"
  "/root/repo/src/mapreduce/tasktracker.cc" "src/CMakeFiles/hogsim.dir/mapreduce/tasktracker.cc.o" "gcc" "src/CMakeFiles/hogsim.dir/mapreduce/tasktracker.cc.o.d"
  "/root/repo/src/net/flow_network.cc" "src/CMakeFiles/hogsim.dir/net/flow_network.cc.o" "gcc" "src/CMakeFiles/hogsim.dir/net/flow_network.cc.o.d"
  "/root/repo/src/sim/simulation.cc" "src/CMakeFiles/hogsim.dir/sim/simulation.cc.o" "gcc" "src/CMakeFiles/hogsim.dir/sim/simulation.cc.o.d"
  "/root/repo/src/storage/disk.cc" "src/CMakeFiles/hogsim.dir/storage/disk.cc.o" "gcc" "src/CMakeFiles/hogsim.dir/storage/disk.cc.o.d"
  "/root/repo/src/util/log.cc" "src/CMakeFiles/hogsim.dir/util/log.cc.o" "gcc" "src/CMakeFiles/hogsim.dir/util/log.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/hogsim.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/hogsim.dir/util/rng.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/hogsim.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/hogsim.dir/util/stats.cc.o.d"
  "/root/repo/src/util/strings.cc" "src/CMakeFiles/hogsim.dir/util/strings.cc.o" "gcc" "src/CMakeFiles/hogsim.dir/util/strings.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/hogsim.dir/util/table.cc.o" "gcc" "src/CMakeFiles/hogsim.dir/util/table.cc.o.d"
  "/root/repo/src/util/units.cc" "src/CMakeFiles/hogsim.dir/util/units.cc.o" "gcc" "src/CMakeFiles/hogsim.dir/util/units.cc.o.d"
  "/root/repo/src/workload/facebook.cc" "src/CMakeFiles/hogsim.dir/workload/facebook.cc.o" "gcc" "src/CMakeFiles/hogsim.dir/workload/facebook.cc.o.d"
  "/root/repo/src/workload/runner.cc" "src/CMakeFiles/hogsim.dir/workload/runner.cc.o" "gcc" "src/CMakeFiles/hogsim.dir/workload/runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
