file(REMOVE_RECURSE
  "libhogsim.a"
)
