# Empty dependencies file for example_site_failure_drill.
# This may be replaced when dependencies are built.
