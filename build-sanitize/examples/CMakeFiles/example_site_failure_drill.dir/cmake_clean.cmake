file(REMOVE_RECURSE
  "CMakeFiles/example_site_failure_drill.dir/site_failure_drill.cpp.o"
  "CMakeFiles/example_site_failure_drill.dir/site_failure_drill.cpp.o.d"
  "example_site_failure_drill"
  "example_site_failure_drill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_site_failure_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
