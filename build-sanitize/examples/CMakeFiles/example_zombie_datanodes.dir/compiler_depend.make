# Empty compiler generated dependencies file for example_zombie_datanodes.
# This may be replaced when dependencies are built.
