file(REMOVE_RECURSE
  "CMakeFiles/example_zombie_datanodes.dir/zombie_datanodes.cpp.o"
  "CMakeFiles/example_zombie_datanodes.dir/zombie_datanodes.cpp.o.d"
  "example_zombie_datanodes"
  "example_zombie_datanodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_zombie_datanodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
