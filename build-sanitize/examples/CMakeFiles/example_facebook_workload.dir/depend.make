# Empty dependencies file for example_facebook_workload.
# This may be replaced when dependencies are built.
