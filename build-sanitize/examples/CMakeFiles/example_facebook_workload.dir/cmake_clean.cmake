file(REMOVE_RECURSE
  "CMakeFiles/example_facebook_workload.dir/facebook_workload.cpp.o"
  "CMakeFiles/example_facebook_workload.dir/facebook_workload.cpp.o.d"
  "example_facebook_workload"
  "example_facebook_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_facebook_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
