# Empty dependencies file for example_elastic_scaling.
# This may be replaced when dependencies are built.
