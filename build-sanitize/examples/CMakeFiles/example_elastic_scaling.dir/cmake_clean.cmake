file(REMOVE_RECURSE
  "CMakeFiles/example_elastic_scaling.dir/elastic_scaling.cpp.o"
  "CMakeFiles/example_elastic_scaling.dir/elastic_scaling.cpp.o.d"
  "example_elastic_scaling"
  "example_elastic_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_elastic_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
