// Adaptive replication head-to-head: the availability-targeted controller
// (src/hdfs/repl_controller.h) vs a fixed-RF ladder {3, 5, 10} under the
// chaos-soak palette.
//
// Every config replays the Facebook workload on a 55-node HOG deployment
// under the same fixed random chaos scenario (the first scenario of the
// soak corpus), with the invariant auditor armed and a post-workload
// healing drain. Fixed-RF configs set HOG's flat replication; adaptive
// configs keep the paper's placement width of 10 but run the controller
// at an availability target, which right-sizes per-block RF in [3, 10] as
// the per-site preemption hazards are learned. Metrics per run: physical
// bytes stored vs logical bytes (the effective RF), WAN repair bytes,
// committed-output availability (outputs_lost), job goodput, and the
// controller's raise/lower/trim counters. All rows are deterministic, so
// check.sh diffs the fast run against the committed BENCH_repl.json.
//
// The bench FAILS (exit 1) if any run breaches the contract:
//   - auditor violations or a non-terminated job on ANY config,
//   - lost committed outputs on rf10 or any adaptive config (the low flat
//     rungs rf3/rf5 are allowed to lose data — they are the cost ladder
//     that motivates the controller, and their losses are reported),
//   - an adaptive config that does not store fewer bytes than flat RF=10
//     on the same seed (the point of the controller).
//
//   bench_repl --fast            # rf10 + adaptive999, full seed set
//   bench_repl                   # the whole ladder
//   bench_repl --repl-target=A   # add one extra adaptive rung at A
#include <cstdio>
#include <string>
#include <vector>

#include "src/exp/bench_main.h"
#include "src/exp/paper_runs.h"
#include "src/fault/random_scenario.h"

using namespace hogsim;

namespace {

constexpr double kGiBDouble = 1024.0 * 1024.0 * 1024.0;

struct ReplConfig {
  std::string label;
  int fixed_rf = 10;      // HogConfig.replication (placement width)
  double target = 0;      // > 0: adaptive controller at this availability
};

}  // namespace

int main(int argc, char** argv) {
  exp::BenchOptions opts = exp::ParseBenchOptions(argc, argv);

  // rf10 and adaptive999 lead so --fast keeps exactly the pair the
  // headline claim compares, with full-run labels/specs/seeds — the fast
  // rows diff one-to-one against the committed baseline.
  std::vector<ReplConfig> configs = {
      {"rf10", 10, 0},
      {"adaptive999", 10, 0.999},
      {"rf3", 3, 0},
      {"rf5", 5, 0},
      {"adaptive9999", 10, 0.9999},
  };
  constexpr std::size_t kFastConfigs = 2;
  if (opts.repl_target > 0) {
    configs.push_back({"adaptive-custom", 10, opts.repl_target});
  }
  if (opts.fast) configs.resize(kFastConfigs);

  // The same chaos schedule for every (config, seed) run: scenario 1000 of
  // the soak corpus, so the ladder differs only in replication policy.
  const fault::Scenario scenario = fault::RandomScenario(1000);

  std::vector<std::string> labels;
  for (const ReplConfig& c : configs) labels.push_back(c.label);

  std::printf("Replication ladder: %zu config(s) x %zu seed(s) under the "
              "soak palette, auditor armed%s\n\n",
              configs.size(), opts.seeds.size(),
              opts.audit ? " (fail-fast)" : "");

  exp::SweepSpec spec;
  spec.name = "repl";
  spec.configs = configs.size();
  spec.config_labels = labels;
  const bool fail_fast = opts.audit;
  const exp::SweepResult sweep = exp::RunBenchSweep(
      opts, spec,
      [&configs, &scenario, fail_fast](std::size_t config,
                                       std::uint64_t seed) -> exp::Metrics {
        const ReplConfig& cfg = configs[config];
        hog::HogConfig hog;
        hog.replication = cfg.fixed_rf;
        exp::HogRunOptions ropts;
        ropts.audit = true;
        ropts.audit_fail_fast = fail_fast;
        ropts.drain_deadline = 2 * kHour;
        ropts.repl_target = cfg.target;
        const auto result =
            exp::RunHogWorkload(55, seed, hog, &scenario, ropts);
        const double logical =
            static_cast<double>(std::max<Bytes>(result.bytes_logical, 1));
        return {{"violations",
                 static_cast<double>(result.audit_violations)},
                {"outputs_lost", static_cast<double>(result.outputs_lost)},
                {"all_terminated", result.workload.completed ? 1.0 : 0.0},
                {"bytes_stored_gib",
                 static_cast<double>(result.bytes_stored) / kGiBDouble},
                {"bytes_logical_gib",
                 static_cast<double>(result.bytes_logical) / kGiBDouble},
                {"effective_rf",
                 static_cast<double>(result.bytes_stored) / logical},
                {"repair_gib",
                 static_cast<double>(result.repair_bytes) / kGiBDouble},
                {"jobs_survived",
                 static_cast<double>(result.workload.succeeded)},
                {"jobs_failed", static_cast<double>(result.workload.failed)},
                {"response_s", result.workload.response_time_s},
                {"time_to_full_repl_s", result.time_to_full_replication_s},
                {"fully_replicated", result.fully_replicated ? 1.0 : 0.0},
                {"targets_raised",
                 static_cast<double>(result.repl_targets_raised)},
                {"targets_lowered",
                 static_cast<double>(result.repl_targets_lowered)},
                {"excess_removed",
                 static_cast<double>(result.repl_excess_removed)}};
      });

  // Contract gate. Metric indices match the list returned above.
  constexpr std::size_t kViolations = 0;
  constexpr std::size_t kOutputsLost = 1;
  constexpr std::size_t kAllTerminated = 2;
  constexpr std::size_t kBytesStored = 3;
  int bad_runs = 0;
  for (const exp::RunRecord& run : sweep.runs) {
    const ReplConfig& cfg = configs[run.config_index];
    const double violations = run.metrics[kViolations].second;
    const double outputs_lost = run.metrics[kOutputsLost].second;
    const double all_terminated = run.metrics[kAllTerminated].second;
    // Durability is only promised where redundancy is adequate: the full
    // paper RF or the availability-targeted controller. The cheap flat
    // rungs exist to lose data — that is the tradeoff being measured.
    const bool durability_gated = cfg.target > 0 || cfg.fixed_rf >= 10;
    if (violations == 0 && all_terminated == 1.0 &&
        (outputs_lost == 0 || !durability_gated)) {
      if (outputs_lost > 0) {
        std::printf("repl note: %s seed %llu lost %g committed output "
                    "block(s) (ungated rung)\n",
                    labels[run.config_index].c_str(),
                    static_cast<unsigned long long>(run.seed),
                    outputs_lost);
      }
      continue;
    }
    ++bad_runs;
    std::printf("REPL FAIL: %s seed %llu: violations=%g outputs_lost=%g "
                "all_terminated=%g\n",
                labels[run.config_index].c_str(),
                static_cast<unsigned long long>(run.seed), violations,
                outputs_lost, all_terminated);
  }

  // The storage claim, per seed: every adaptive config must store fewer
  // bytes than flat RF=10 under the identical chaos schedule.
  for (std::uint64_t seed : spec.seeds) {
    double rf10_stored = -1;
    for (const exp::RunRecord& run : sweep.runs) {
      if (run.seed == seed && labels[run.config_index] == "rf10") {
        rf10_stored = run.metrics[kBytesStored].second;
      }
    }
    if (rf10_stored < 0) continue;
    for (const exp::RunRecord& run : sweep.runs) {
      if (run.seed != seed ||
          configs[run.config_index].target <= 0) {
        continue;
      }
      const double stored = run.metrics[kBytesStored].second;
      if (stored >= rf10_stored) {
        ++bad_runs;
        std::printf("REPL FAIL: %s seed %llu: stored %.3f GiB, not below "
                    "rf10's %.3f GiB\n",
                    labels[run.config_index].c_str(),
                    static_cast<unsigned long long>(seed), stored,
                    rf10_stored);
      }
    }
  }

  if (bad_runs > 0) {
    std::printf("\nreplication ladder FAILED: %d breach(es) of the "
                "availability/storage contract\n", bad_runs);
    return 1;
  }
  std::printf("\nreplication ladder PASSED: %zu runs, zero violations, zero "
              "lost outputs, adaptive stored fewer bytes than rf10\n",
              sweep.runs.size());
  return 0;
}
