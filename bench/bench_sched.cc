// Scheduler head-to-head: the same multi-user workload, cluster, and
// chaos palette under each policy in the zoo (fifo / fair / capacity /
// atlas), so every metric delta between rows is attributable to the
// policy alone. The headline is goodput_per_slot_hour — tasks of
// succeeded jobs per nominal slot-hour — which rewards keeping slots
// busy with work that survives the faults. BENCH_sched.json commits the
// trajectory for compare_bench.
//
// All emitted metrics are deterministic per (config, seed): byte-stable
// across machines and --threads values (tests/sched_bench_test.cc pins
// this), so the whole file is gateable without a host/deterministic
// split.
//
//   bench_sched --fast --audit      # CI gate (fifo / fair / atlas)
//   bench_sched                     # full zoo incl. capacity
//   bench_sched --scheduler=fair    # single-policy run
#include <cstdio>
#include <string>
#include <vector>

#include "src/exp/bench_main.h"
#include "src/exp/sched_run.h"

using namespace hogsim;

namespace {

struct PolicyRow {
  const char* label;
  const char* spec;
};

/// The full zoo; --fast runs the first kFastConfigs entries. Fast rows
/// keep the full-run labels, specs, and default seeds, so a fast
/// candidate compares row-for-row against the committed full baseline.
constexpr int kFastConfigs = 3;

std::vector<PolicyRow> Zoo() {
  return {
      {"fifo", "fifo"},
      {"fair", "fair"},
      {"atlas", "atlas"},
      {"capacity", "capacity:queues=prod:0.7:1;adhoc:0.3:1"},
  };
}

}  // namespace

int main(int argc, char** argv) {
  exp::BenchOptions opts = exp::ParseBenchOptions(argc, argv);

  std::vector<PolicyRow> zoo = Zoo();
  if (opts.fast) zoo.resize(kFastConfigs);
  // --scheduler restricts the head-to-head to one row; an exact label
  // match keeps the row comparable against the committed baseline, and
  // an unknown spec becomes a single custom row (label = spec).
  if (!opts.scheduler.empty()) {
    std::vector<PolicyRow> picked;
    for (const PolicyRow& row : zoo) {
      if (opts.scheduler == row.label) picked.push_back(row);
    }
    if (picked.empty()) {
      static std::string custom = opts.scheduler;
      picked.push_back({custom.c_str(), custom.c_str()});
    }
    zoo = std::move(picked);
  }

  std::vector<std::string> labels;
  for (const PolicyRow& row : zoo) labels.push_back(row.label);

  std::printf("Scheduler head-to-head: %zu polic%s x %zu seed(s), chaos "
              "palette armed%s\n\n",
              zoo.size(), zoo.size() == 1 ? "y" : "ies", opts.seeds.size(),
              opts.audit ? ", auditor fail-fast" : "");

  exp::SweepSpec spec;
  spec.name = "sched";
  spec.configs = zoo.size();
  spec.config_labels = labels;
  const exp::SweepResult sweep = exp::RunBenchSweep(
      opts, spec,
      [&zoo, &opts](std::size_t config, std::uint64_t seed) -> exp::Metrics {
        exp::SchedRunConfig run;
        run.scheduler = zoo[config].spec;
        run.audit = true;
        run.audit_fail_fast = opts.audit;
        return exp::RunSchedWorkload(run, seed);
      });

  // Gate: every run must reach its node target, bring every job to a
  // terminal state, and audit clean. Chaos may legitimately fail a job
  // (max_attempts exhausted on a dying site) — same contract as the
  // chaos soak — and failed jobs already drag the goodput headline, so
  // failures are compared, not gated. Metric order matches
  // RunSchedWorkload's emission order.
  int bad_runs = 0;
  for (const exp::RunRecord& run : sweep.runs) {
    const double reached = run.metrics[0].second;
    const double succeeded = run.metrics[1].second;
    const double failed = run.metrics[2].second;
    const double terminated = run.metrics[3].second;
    const double violations = run.metrics.back().second;
    if (reached == 1.0 && terminated == 1.0 && violations == 0) {
      continue;
    }
    ++bad_runs;
    std::printf("SCHED FAIL: %s seed %llu: reached=%g succeeded=%g "
                "failed=%g terminated=%g violations=%g\n",
                labels[run.config_index].c_str(),
                static_cast<unsigned long long>(run.seed), reached,
                succeeded, failed, terminated, violations);
  }
  if (bad_runs > 0) {
    std::printf("\nsched head-to-head FAILED: %d of %zu runs broke the "
                "contract\n", bad_runs, sweep.runs.size());
    return 1;
  }
  std::printf("\nsched head-to-head PASSED: %zu runs, all jobs terminated "
              "under chaos, audits clean\n", sweep.runs.size());
  return 0;
}
