// Intra-site topology head-to-head: the src/net/topo zoo (star, ToR
// tiers at several oversubscription factors, fat-tree, rotor) under the
// workloads where the fabric matters.
//
// Three workload modes, all on a 40-glidein HOG deployment (8 nodes per
// site — small enough that a rack's uplink genuinely binds below the
// site's 2 Gbps WAN uplink when oversubscribed):
//   shuffle  the 88-job Facebook replay on a churn-free grid (preemption
//            disabled), so the fabric is the only variable: cross-rack
//            shuffle and HDFS writes ride it, and an oversubscribed ToR
//            tier must slow the workload down vs the non-blocking star.
//            (Under the default churn the makespan is preemption
//            lottery — a ±10% effect that swamps the fabric penalty.)
//   drain    the same churn-free replay plus a mid-run two-site
//            preemption burst and a post-workload healing drain: the
//            burst is the only node loss, so the repair backlog is
//            fixed and the re-replication flows (source rack up, target
//            rack down — the fabric twice) are the only variable. A
//            starved fabric inflates time-to-full-replication.
//   adaptive the drain workload with the availability-targeted RF
//            controller at 0.999 — topology-aware racks feed the
//            controller's site census, and the run must stay audit-clean.
//
// Every run arms the cross-layer auditor. All metrics are sim-derived
// and deterministic across machines and --threads; --no-host-metrics
// drops the wall-clock row so the whole BENCH_topo.json is byte-stable
// (that is what the check.sh gate diffs against the committed baseline).
//
// The tor16 rows organically fail a handful of the largest shuffle jobs
// (task-attempt exhaustion once the fabric starves their reduce fetches)
// — deliberate collateral of an oversubscription factor high enough to
// bind: the damage is real, deterministic, and visible in jobs_survived,
// while committed outputs stay intact (outputs_lost == 0 is gated).
//
// The bench FAILS (exit 1) if any run breaches the contract:
//   - auditor violations, a non-terminated job, or a lost committed
//     output block on ANY config,
//   - a drain row that does not finish healing before its deadline,
//   - per seed: the oversubscribed ToR (tor16) not slower than star on
//     shuffle response time, or not slower to heal on the drain —
//     the fabric model must actually bite.
//
//   bench_topo --fast --no-host-metrics   # CI gate (star/tor16 pairs)
//   bench_topo                            # the full zoo
//   bench_topo --topology=SPEC            # add a custom shuffle row
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/exp/bench_main.h"
#include "src/exp/paper_runs.h"
#include "src/fault/scenario.h"

using namespace hogsim;

namespace {

constexpr double kGiBDouble = 1024.0 * 1024.0 * 1024.0;
constexpr int kNodes = 40;

enum class Mode { kShuffle, kDrain, kAdaptive };

struct TopoConfig {
  std::string label;
  std::string topology;  // net::topo::CreateTopology spec
  Mode mode = Mode::kShuffle;
};

// The preemption burst for the drain/adaptive modes: two sites lose a
// large slice of their glideins mid-workload (late enough that a big
// replica inventory exists), queueing rack-spread re-replications whose
// repair flows must cross the fabric.
// 78/80 minutes lands just before the quiet-grid workload's earliest
// completion (~82 m across the zoo and the default seeds), so the
// repair backlog is near-final-inventory-sized and its tail extends
// past workload end into the measured drain window.
constexpr const char* kDrainScenario =
    "at 78m preempt-site 0 0.5\n"
    "at 80m preempt-site 2 0.4\n";
// First-burst offset from workload start: the zero point of the
// burst_to_healed_s metric (burst -> under-replication queue empty).
// Measuring from the burst rather than from workload end removes the
// makespan confound — a slower fabric ends the workload later and would
// otherwise get a head start on its own drain clock.
constexpr double kBurstOffsetS = 78 * 60.0;

// A grid with owner churn disabled: no single-node preemptions, no
// correlated bursts. The shuffle rows run on it so the star-vs-tor
// response delta measures the fabric, not the preemption lottery.
hog::HogConfig QuietGrid() {
  hog::HogConfig config;
  config.sites = hog::DefaultOsgSites();
  for (auto& site : config.sites) {
    site.node_mtbf_s = 1e9;
    site.burst_interval_s = 1e9;
    site.burst_fraction = 0;
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  bool host_metrics = true;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-host-metrics") == 0) {
      host_metrics = false;
      continue;
    }
    args.push_back(argv[i]);
  }
  exp::BenchOptions opts = exp::ParseBenchOptions(
      static_cast<int>(args.size()), args.data());

  // The star/tor16 pairs lead so --fast keeps exactly the rows the
  // headline claims compare, with full-run labels — the fast rows diff
  // one-to-one against the committed baseline.
  std::vector<TopoConfig> configs = {
      {"star-shuffle", "star", Mode::kShuffle},
      {"tor16-shuffle", "tor:racks=4;oversub=16", Mode::kShuffle},
      {"star-drain", "star", Mode::kDrain},
      {"tor16-drain", "tor:racks=4;oversub=16", Mode::kDrain},
      {"tor1-shuffle", "tor:racks=4;oversub=1", Mode::kShuffle},
      {"tor4-shuffle", "tor:racks=4;oversub=4", Mode::kShuffle},
      {"tor8-shuffle", "tor:racks=4;oversub=8", Mode::kShuffle},
      {"fattree-shuffle", "fattree:k=4;gbps=1", Mode::kShuffle},
      {"rotor-shuffle", "rotor:racks=4;slice_ms=100;gbps=1", Mode::kShuffle},
      {"fattree-drain", "fattree:k=4;gbps=1", Mode::kDrain},
      {"rotor-drain", "rotor:racks=4;slice_ms=100;gbps=1", Mode::kDrain},
      {"star-adaptive", "star", Mode::kAdaptive},
      {"tor16-adaptive", "tor:racks=4;oversub=16", Mode::kAdaptive},
  };
  constexpr std::size_t kFastConfigs = 4;
  if (opts.fast) configs.resize(kFastConfigs);
  if (!opts.topology.empty()) {
    configs.push_back({"custom-shuffle", opts.topology, Mode::kShuffle});
  }

  const fault::Scenario drain_scenario =
      fault::ParseScenario(kDrainScenario, "<bench_topo drain>");

  std::vector<std::string> labels;
  for (const TopoConfig& c : configs) labels.push_back(c.label);

  std::printf("Topology zoo: %zu config(s) x %zu seed(s) on %d nodes, "
              "auditor armed%s\n\n",
              configs.size(), opts.seeds.size(), kNodes,
              opts.audit ? " (fail-fast)" : "");

  exp::SweepSpec spec;
  spec.name = "topo";
  spec.configs = configs.size();
  spec.config_labels = labels;
  const bool fail_fast = opts.audit;
  const exp::SweepResult sweep = exp::RunBenchSweep(
      opts, spec,
      [&configs, &drain_scenario, fail_fast, host_metrics](
          std::size_t config, std::uint64_t seed) -> exp::Metrics {
        const TopoConfig& cfg = configs[config];
        exp::HogRunOptions ropts;
        ropts.audit = true;
        ropts.audit_fail_fast = fail_fast;
        ropts.topology = cfg.topology;
        const fault::Scenario* scenario = nullptr;
        hog::HogConfig hog = QuietGrid();
        if (cfg.mode != Mode::kShuffle) {
          scenario = &drain_scenario;
          ropts.drain_deadline = 2 * kHour;
        }
        if (cfg.mode == Mode::kAdaptive) ropts.repl_target = 0.999;
        const auto t0 = std::chrono::steady_clock::now();
        const auto result =
            exp::RunHogWorkload(kNodes, seed, hog, scenario, ropts);
        const double wall =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        exp::Metrics metrics = {
            {"violations", static_cast<double>(result.audit_violations)},
            {"outputs_lost", static_cast<double>(result.outputs_lost)},
            {"all_terminated", result.workload.completed ? 1.0 : 0.0},
            {"response_s", result.workload.response_time_s},
            {"fully_replicated", result.fully_replicated ? 1.0 : 0.0},
            {"time_to_full_repl_s", result.time_to_full_replication_s},
            {"burst_to_healed_s",
             cfg.mode == Mode::kShuffle
                 ? -1.0
                 : result.workload.response_time_s +
                       std::max(result.time_to_full_replication_s, 0.0) -
                       kBurstOffsetS},
            {"repair_gib",
             static_cast<double>(result.repair_bytes) / kGiBDouble},
            {"jobs_survived",
             static_cast<double>(result.workload.succeeded)},
            {"maps_reexecuted",
             static_cast<double>(result.maps_reexecuted)},
            {"targets_raised",
             static_cast<double>(result.repl_targets_raised)}};
        if (host_metrics) metrics.push_back({"wall_s", wall});
        return metrics;
      });

  // Contract gate. Metric indices match the list returned above.
  constexpr std::size_t kViolations = 0;
  constexpr std::size_t kOutputsLost = 1;
  constexpr std::size_t kAllTerminated = 2;
  constexpr std::size_t kResponse = 3;
  constexpr std::size_t kFullyReplicated = 4;
  constexpr std::size_t kBurstToHealed = 6;
  int bad_runs = 0;
  for (const exp::RunRecord& run : sweep.runs) {
    const TopoConfig& cfg = configs[run.config_index];
    const double violations = run.metrics[kViolations].second;
    const double outputs_lost = run.metrics[kOutputsLost].second;
    const double all_terminated = run.metrics[kAllTerminated].second;
    const double healed = run.metrics[kFullyReplicated].second;
    if (violations == 0 && all_terminated == 1.0 && outputs_lost == 0 &&
        (cfg.mode == Mode::kShuffle || healed == 1.0)) {
      continue;
    }
    ++bad_runs;
    std::printf("TOPO FAIL: %s seed %llu: violations=%g outputs_lost=%g "
                "all_terminated=%g fully_replicated=%g\n",
                labels[run.config_index].c_str(),
                static_cast<unsigned long long>(run.seed), violations,
                outputs_lost, all_terminated, healed);
  }

  // The fabric claims, per seed: the oversubscribed ToR must be strictly
  // slower than star on the shuffle replay and strictly slower to heal
  // on the drain — otherwise the topology model is not binding.
  const auto metric_for = [&](std::uint64_t seed, const char* label,
                              std::size_t metric) -> double {
    for (const exp::RunRecord& run : sweep.runs) {
      if (run.seed == seed && labels[run.config_index] == label) {
        return run.metrics[metric].second;
      }
    }
    return -1;
  };
  for (std::uint64_t seed : spec.seeds) {
    const double star_resp = metric_for(seed, "star-shuffle", kResponse);
    const double tor_resp = metric_for(seed, "tor16-shuffle", kResponse);
    if (star_resp >= 0 && tor_resp >= 0 && tor_resp <= star_resp) {
      ++bad_runs;
      std::printf("TOPO FAIL: seed %llu: tor16 shuffle response %.3f s not "
                  "above star's %.3f s\n",
                  static_cast<unsigned long long>(seed), tor_resp,
                  star_resp);
    }
    const double star_heal = metric_for(seed, "star-drain", kBurstToHealed);
    const double tor_heal = metric_for(seed, "tor16-drain", kBurstToHealed);
    if (star_heal >= 0 && tor_heal >= 0 && tor_heal <= star_heal) {
      ++bad_runs;
      std::printf("TOPO FAIL: seed %llu: tor16 drain healed in %.3f s, not "
                  "above star's %.3f s\n",
                  static_cast<unsigned long long>(seed), tor_heal,
                  star_heal);
    }
  }

  if (bad_runs > 0) {
    std::printf("\ntopology zoo FAILED: %d breach(es) of the fabric "
                "contract\n", bad_runs);
    return 1;
  }
  std::printf("\ntopology zoo PASSED: %zu runs, zero violations, zero lost "
              "outputs, oversubscribed fabric measurably binding\n",
              sweep.runs.size());
  return 0;
}
