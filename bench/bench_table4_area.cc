// Reproduces Table IV — "Area beneath curves": for the three Fig. 5 runs,
// the workload response time and the integral of the reported-node curve
// over the execution window. The paper's observation: more node
// fluctuation (smaller mean area per second) goes with longer response.
//
//   paper:  5a: 4396 s / 181020      5b: 3896 s / 172360
//           5c: 6235 s / 252455   (c is the unstable run)
//
// Sweep layout mirrors bench_fig5_fluctuation: one config, one run per
// seed, the LAST seed on the unstable grid. The paper's reference numbers
// are shown alongside when running the default three seeds.
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/exp/paper_runs.h"
#include "src/exp/bench_main.h"
#include "src/util/table.h"

using namespace hogsim;

int main(int argc, char** argv) {
  exp::BenchOptions opts = exp::ParseBenchOptions(argc, argv);
  if (opts.fast && opts.seeds.size() > 2) {
    opts.seeds = {opts.seeds.front(), opts.seeds.back()};
  }
  const fault::Scenario scenario = exp::LoadBenchScenario(opts);

  std::printf("Table IV: area beneath the Fig. 5 node-availability curves\n\n");

  hog::HogConfig unstable;
  unstable.sites = hog::DefaultOsgSites();
  for (auto& site : unstable.sites) {
    site.node_mtbf_s = 3200.0;
    site.burst_interval_s = 600.0;
    site.burst_fraction = 0.18;
  }

  // The paper's runs, executed in parallel by the sweep harness (one
  // Simulation per thread; per-seed results identical to sequential runs).
  exp::SweepSpec spec;
  spec.name = "table4";
  spec.configs = 1;
  spec.config_labels = {"hog55"};
  const std::vector<std::uint64_t>& seeds = opts.seeds;
  std::vector<exp::HogRunResult> runs(seeds.size());
  exp::RunBenchSweep(
      opts, spec, [&](std::size_t, std::uint64_t seed) -> exp::Metrics {
        std::size_t idx = 0;
        while (seeds[idx] != seed) ++idx;
        exp::HogRunOptions ropts;
        ropts.repl_target = opts.repl_target;
        ropts.topology = opts.topology;
        ropts.detector = opts.detector;
        auto run =
            idx + 1 == seeds.size()
                ? exp::RunHogWorkload(55, seed, unstable, &scenario, ropts)
                : exp::RunHogWorkload(55, seed, {}, &scenario, ropts);
        exp::Metrics metrics = {
            {"response_s", run.workload.response_time_s},
            {"area_node_s", run.area_beneath_curve},
            {"mean_nodes", run.mean_reported_nodes}};
        runs[idx] = std::move(run);
        return metrics;
      });

  // Paper reference values for the canonical three-run configuration.
  struct PaperRow {
    double response;
    double area;
  };
  const PaperRow paper[] = {{4396, 181020}, {3896, 172360}, {6235, 252455}};
  const bool canonical = runs.size() == 3;

  TextTable table({"Figure No.", "Response Time (s)", "Area (node-s)",
                   "mean nodes", "paper response", "paper area"});
  for (std::size_t idx = 0; idx < runs.size(); ++idx) {
    std::string figure = "5";
    figure += static_cast<char>('a' + idx);
    table.AddRow({figure,
                  FormatDouble(runs[idx].workload.response_time_s, 0),
                  FormatDouble(runs[idx].area_beneath_curve, 0),
                  FormatDouble(runs[idx].mean_reported_nodes, 1),
                  canonical ? FormatDouble(paper[idx].response, 0) : "-",
                  canonical ? FormatDouble(paper[idx].area, 0) : "-"});
  }
  table.Print(std::cout);

  bool ordering_holds = true;
  for (std::size_t idx = 0; idx + 1 < runs.size(); ++idx) {
    ordering_holds = ordering_holds &&
                     runs.back().workload.response_time_s >
                         runs[idx].workload.response_time_s;
  }
  std::printf("\nShape check: unstable run (last) has the longest response: "
              "%s\n", ordering_holds ? "YES (matches paper)" : "NO");
  std::printf("Paper's rule reproduced: more fluctuation beneath the curve "
              "=> longer response for the same workload.\n");
  return 0;
}
