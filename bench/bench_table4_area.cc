// Reproduces Table IV — "Area beneath curves": for the three Fig. 5 runs,
// the workload response time and the integral of the reported-node curve
// over the execution window. The paper's observation: more node
// fluctuation (smaller mean area per second) goes with longer response.
//
//   paper:  5a: 4396 s / 181020      5b: 3896 s / 172360
//           5c: 6235 s / 252455   (c is the unstable run)
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/exp/sweep.h"
#include "src/util/table.h"

using namespace hogsim;

int main() {
  std::printf("Table IV: area beneath the Fig. 5 node-availability curves\n\n");

  hog::HogConfig unstable;
  unstable.sites = hog::DefaultOsgSites();
  for (auto& site : unstable.sites) {
    site.node_mtbf_s = 3200.0;
    site.burst_interval_s = 600.0;
    site.burst_fraction = 0.18;
  }

  // The paper's three runs, executed in parallel by the sweep harness (one
  // Simulation per thread; per-seed results identical to sequential runs).
  exp::SweepSpec spec;
  spec.name = "table4";
  spec.seeds = {bench::kSeeds[0], bench::kSeeds[1], bench::kSeeds[2]};
  spec.configs = 1;
  spec.config_labels = {"hog55"};
  std::vector<bench::HogRunResult> runs(spec.seeds.size());
  const auto sweep = exp::RunSweep(
      spec, [&](std::size_t, std::uint64_t seed) -> exp::Metrics {
        std::size_t idx = 0;
        while (spec.seeds[idx] != seed) ++idx;
        auto run = idx == 2 ? bench::RunHogWorkload(55, seed, unstable)
                            : bench::RunHogWorkload(55, seed);
        exp::Metrics metrics = {
            {"response_s", run.workload.response_time_s},
            {"area_node_s", run.area_beneath_curve},
            {"mean_nodes", run.mean_reported_nodes}};
        runs[idx] = std::move(run);
        return metrics;
      });
  exp::WriteBenchJson("BENCH_table4.json", spec, sweep);

  struct Row {
    const char* figure;
    const bench::HogRunResult& result;
    double paper_response;
    double paper_area;
  };
  const Row rows[] = {
      {"5a", runs[0], 4396, 181020},
      {"5b", runs[1], 3896, 172360},
      {"5c", runs[2], 6235, 252455},
  };

  TextTable table({"Figure No.", "Response Time (s)", "Area (node-s)",
                   "mean nodes", "paper response", "paper area"});
  for (const auto& row : rows) {
    table.AddRow({row.figure,
                  FormatDouble(row.result.workload.response_time_s, 0),
                  FormatDouble(row.result.area_beneath_curve, 0),
                  FormatDouble(row.result.mean_reported_nodes, 1),
                  FormatDouble(row.paper_response, 0),
                  FormatDouble(row.paper_area, 0)});
  }
  table.Print(std::cout);

  const bool ordering_holds =
      rows[2].result.workload.response_time_s >
          rows[0].result.workload.response_time_s &&
      rows[2].result.workload.response_time_s >
          rows[1].result.workload.response_time_s;
  std::printf("\nShape check: unstable run (5c) has the longest response: "
              "%s\n", ordering_holds ? "YES (matches paper)" : "NO");
  std::printf("Paper's rule reproduced: more fluctuation beneath the curve "
              "=> longer response for the same workload.\n");
  return 0;
}
