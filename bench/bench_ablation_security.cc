// Ablation for §VI (future work, implemented as an extension): PKI
// encryption of HOG's HTTP communication. The paper plans to encrypt RPC
// to prevent man-in-the-middle attacks on the open grid; this bench
// measures what that protection would cost on the evaluation workload.
// Each crypto setting is a config; the slowdown column compares summary
// means against the plain-HTTP config.
#include <cstdio>
#include <iostream>

#include "src/exp/paper_runs.h"
#include "src/exp/bench_main.h"
#include "src/util/table.h"

using namespace hogsim;

namespace {

struct Case {
  const char* name;
  SimDuration handshake;
  double overhead;
};

constexpr Case kCases[] = {
    {"plain HTTP (paper's current HOG)", 0, 0.0},
    {"PKI: +5 ms handshake, +10% cipher cost", 5 * kMillisecond, 0.10},
    {"PKI worst-case: +20 ms, +25%", 20 * kMillisecond, 0.25},
};

exp::Metrics Run(const Case& c, std::uint64_t seed, bool fast,
                 const fault::Scenario& scenario) {
  hog::HogConfig config;
  config.net.crypto_latency = c.handshake;
  config.net.crypto_byte_overhead = c.overhead;
  hog::HogCluster cluster(seed, config);
  cluster.RequestNodes(60);
  if (!cluster.WaitForNodes(60, exp::kSpinUpDeadline) &&
      !cluster.WaitForNodes(57, cluster.sim().now() + exp::kSpinUpDeadline)) {
    return {{"response_s", 0.0}};
  }
  Rng rng(seed);
  workload::WorkloadConfig wl;
  auto schedule = workload::GenerateFacebookSchedule(rng, wl);
  if (fast) schedule.resize(schedule.size() / 2);
  workload::WorkloadRunner runner(cluster.sim(), cluster.jobtracker(),
                                  cluster.namenode(), wl);
  runner.PrepareInputs(schedule);
  const auto chaos = exp::ArmScenario(cluster, scenario);
  runner.SubmitAll(schedule);
  return {{"response_s",
           runner.Run(cluster.sim().now() + exp::kRunDeadline)
               .response_time_s}};
}

}  // namespace

int main(int argc, char** argv) {
  exp::BenchOptions opts = exp::ParseBenchOptions(argc, argv);
  if (opts.fast) opts.seeds.resize(1);
  const fault::Scenario scenario = exp::LoadBenchScenario(opts);

  std::printf("Ablation: §VI security — PKI-encrypted HTTP communication "
              "(60-node HOG; %zu seed(s))\n\n", opts.seeds.size());
  exp::SweepSpec spec;
  spec.name = "ablation_security";
  spec.configs = std::size(kCases);
  spec.config_labels = {"plain", "pki_moderate", "pki_worst"};
  const bool fast = opts.fast;
  const exp::SweepResult sweep = exp::RunBenchSweep(
      opts, spec, [fast, &scenario](std::size_t config, std::uint64_t seed) {
        return Run(kCases[config], seed, fast, scenario);
      });

  const double baseline = sweep.summaries[0][0].stats.mean();
  TextTable table({"configuration", "response (s)", "ci95", "slowdown"});
  for (std::size_t c = 0; c < spec.configs; ++c) {
    const exp::MetricSummary& m = sweep.summaries[c][0];
    table.AddRow({kCases[c].name, FormatDouble(m.stats.mean(), 0),
                  "+-" + FormatDouble(m.ci95_halfwidth, 0),
                  FormatDouble(m.stats.mean() / baseline, 2) + "x"});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: moderate PKI costs add single-digit percent to "
      "the workload response (the WAN round trips and cipher overhead sit "
      "mostly off the critical path), supporting §VI's plan that securing "
      "HOG is affordable. Aggressive overheads start to show in the "
      "shuffle-heavy phase.\n");
  return 0;
}
