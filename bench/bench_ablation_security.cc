// Ablation for §VI (future work, implemented as an extension): PKI
// encryption of HOG's HTTP communication. The paper plans to encrypt RPC
// to prevent man-in-the-middle attacks on the open grid; this bench
// measures what that protection would cost on the evaluation workload.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/util/table.h"

using namespace hogsim;

namespace {

double Run(SimDuration handshake, double byte_overhead) {
  hog::HogConfig config;
  config.net.crypto_latency = handshake;
  config.net.crypto_byte_overhead = byte_overhead;
  hog::HogCluster cluster(bench::kSeeds[0], config);
  cluster.RequestNodes(60);
  if (!cluster.WaitForNodes(60, bench::kSpinUpDeadline) &&
      !cluster.WaitForNodes(57, cluster.sim().now() + bench::kSpinUpDeadline)) {
    return -1;
  }
  Rng rng(bench::kSeeds[0]);
  workload::WorkloadConfig wl;
  auto schedule = workload::GenerateFacebookSchedule(rng, wl);
  if (bench::FastMode()) schedule.resize(schedule.size() / 2);
  workload::WorkloadRunner runner(cluster.sim(), cluster.jobtracker(),
                                  cluster.namenode(), wl);
  runner.PrepareInputs(schedule);
  runner.SubmitAll(schedule);
  return runner.Run(cluster.sim().now() + bench::kRunDeadline)
      .response_time_s;
}

}  // namespace

int main() {
  std::printf("Ablation: §VI security — PKI-encrypted HTTP communication "
              "(60-node HOG)\n\n");
  struct Case {
    const char* name;
    SimDuration handshake;
    double overhead;
  };
  const Case cases[] = {
      {"plain HTTP (paper's current HOG)", 0, 0.0},
      {"PKI: +5 ms handshake, +10% cipher cost", 5 * kMillisecond, 0.10},
      {"PKI worst-case: +20 ms, +25%", 20 * kMillisecond, 0.25},
  };
  TextTable table({"configuration", "response (s)", "slowdown"});
  double baseline = 0;
  for (const Case& c : cases) {
    const double response = Run(c.handshake, c.overhead);
    if (baseline == 0) baseline = response;
    table.AddRow({c.name, FormatDouble(response, 0),
                  FormatDouble(response / baseline, 2) + "x"});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: moderate PKI costs add single-digit percent to "
      "the workload response (the WAN round trips and cipher overhead sit "
      "mostly off the critical path), supporting §VI's plan that securing "
      "HOG is affordable. Aggressive overheads start to show in the "
      "shuffle-heavy phase.\n");
  return 0;
}
