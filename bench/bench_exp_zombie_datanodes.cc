// Reproduces §IV.D.1 — "Abandoned Data Nodes": double-forked daemons that
// escape the site's preemption kill keep heartbeating with a deleted
// working directory. They accept tasks that fail immediately, hold phantom
// replicas the namenode trusts, and cost clients read timeouts. The
// paper's fixes: a periodic working-directory probe (daemons shut
// themselves down) and launching daemons inside the wrapper's process tree
// (so the site's kill reaches them).
//
// Design: identical runs with an identical injected preemption schedule
// (four waves, each evicting 15% of a site), differing only in what a
// preemption does to the daemons:
//   1. first-iteration HOG: daemons escape; no probe (the bug)
//   2. probe fix:           daemons escape; 3-minute probe reaps them
//   3. process-tree fix:    the kill takes the daemons down with the job
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/util/table.h"

using namespace hogsim;

namespace {

struct Variant {
  const char* name;
  double zombie_probability;
  SimDuration probe_interval;
};

struct Outcome {
  double response_s = 0;
  std::uint64_t zombie_events = 0;
  int zombies_left = 0;
  int failed_jobs = 0;
  std::uint64_t attempts = 0;
};

Outcome RunVariant(const Variant& variant) {
  hog::HogConfig config;
  config.grid.zombie_probability = variant.zombie_probability;
  config.disk_check_interval = variant.probe_interval;
  config.sites = hog::DefaultOsgSites();
  for (auto& site : config.sites) {
    site.node_mtbf_s = 1e9;  // all preemption comes from the injections
    site.burst_interval_s = 0;
  }
  hog::HogCluster cluster(bench::kSeeds[0], config);
  cluster.RequestNodes(55);
  if (!cluster.WaitForNodes(55, bench::kSpinUpDeadline)) return {};

  Rng rng(bench::kSeeds[0]);
  workload::WorkloadConfig wl;
  auto schedule = workload::GenerateFacebookSchedule(rng, wl);
  if (bench::FastMode()) schedule.resize(schedule.size() / 2);
  workload::WorkloadRunner runner(cluster.sim(), cluster.jobtracker(),
                                  cluster.namenode(), wl);
  runner.PrepareInputs(schedule);
  runner.SubmitAll(schedule);
  // The injected preemption schedule: identical across variants. Gentle
  // waves (20% of one site each) so the damage signal is the daemons'
  // fate, not raw capacity loss.
  for (int wave = 0; wave < 6; ++wave) {
    cluster.sim().ScheduleAfter((4 + 6 * wave) * kMinute,
                                [&cluster, wave] {
                                  cluster.grid().PreemptSiteFraction(
                                      static_cast<std::size_t>(wave % 5),
                                      0.2);
                                });
  }
  const auto result = runner.Run(cluster.sim().now() + bench::kRunDeadline);
  Outcome outcome;
  outcome.response_s = result.response_time_s;
  outcome.zombie_events = cluster.grid().zombie_events();
  outcome.zombies_left = cluster.grid().zombie_nodes();
  outcome.failed_jobs = result.failed;
  outcome.attempts = cluster.jobtracker().attempts_launched();
  return outcome;
}

}  // namespace

int main() {
  std::printf("§IV.D.1: abandoned (zombie) datanodes\n");
  std::printf("(identical 6-wave preemption injection; only the daemons' "
              "fate differs)\n\n");
  const Variant variants[] = {
      {"double-fork, no probe (bug)", 1.0, 0},
      {"double-fork + 3 min probe (fix 1)", 1.0, 3 * kMinute},
      {"single process tree (fix 2)", 0.0, 3 * kMinute},
  };
  TextTable table({"variant", "response (s)", "failed jobs",
                   "attempts", "zombie events", "zombies at end"});
  std::vector<Outcome> outcomes;
  for (const auto& variant : variants) {
    const Outcome outcome = RunVariant(variant);
    outcomes.push_back(outcome);
    table.AddRow({variant.name, FormatDouble(outcome.response_s, 0),
                  std::to_string(outcome.failed_jobs),
                  std::to_string(outcome.attempts),
                  std::to_string(outcome.zombie_events),
                  std::to_string(outcome.zombies_left)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: under the bug EVERY zombie haunts the pool to the "
      "end — tasks keep landing on them and failing instantly, so jobs "
      "fail in droves (a failed job also ends early, which is why the "
      "buggy run's wall-clock 'response' can look short). The probe reaps "
      "zombies within ~3 minutes, cutting the failures; the process-tree "
      "fix never creates zombies and is the only variant that completes "
      "the whole workload.\n");
  std::printf("Failed jobs strictly improve bug -> probe -> process-tree: "
              "%s; zombies drained by the fixes: %s\n",
              (outcomes[0].failed_jobs > outcomes[1].failed_jobs &&
               outcomes[1].failed_jobs > outcomes[2].failed_jobs)
                  ? "YES"
                  : "NO",
              (static_cast<std::uint64_t>(outcomes[0].zombies_left) >=
                   outcomes[0].zombie_events &&
               outcomes[1].zombies_left <= 2 && outcomes[2].zombies_left == 0)
                  ? "YES"
                  : "NO");
  return 0;
}
