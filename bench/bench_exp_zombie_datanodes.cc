// Reproduces §IV.D.1 — "Abandoned Data Nodes": double-forked daemons that
// escape the site's preemption kill keep heartbeating with a deleted
// working directory. They accept tasks that fail immediately, hold phantom
// replicas the namenode trusts, and cost clients read timeouts. The
// paper's fixes: a periodic working-directory probe (daemons shut
// themselves down) and launching daemons inside the wrapper's process tree
// (so the site's kill reaches them).
//
// Design: identical runs with an identical injected preemption schedule
// (six waves, each evicting 20% of a site), differing only in what a
// preemption does to the daemons:
//   1. first-iteration HOG: daemons escape; no probe (the bug)
//   2. probe fix:           daemons escape; 3-minute probe reaps them
//   3. process-tree fix:    the kill takes the daemons down with the job
// Each variant is a sweep config; results aggregate across seeds.
#include <cstdio>
#include <iostream>

#include "src/exp/paper_runs.h"
#include "src/exp/bench_main.h"
#include "src/util/table.h"

using namespace hogsim;

namespace {

struct Variant {
  const char* name;
  double zombie_probability;
  SimDuration probe_interval;
};

constexpr Variant kVariants[] = {
    {"double-fork, no probe (bug)", 1.0, 0},
    {"double-fork + 3 min probe (fix 1)", 1.0, 3 * kMinute},
    {"single process tree (fix 2)", 0.0, 3 * kMinute},
};

exp::Metrics Run(const Variant& variant, std::uint64_t seed, bool fast,
                 const fault::Scenario& scenario) {
  hog::HogConfig config;
  config.grid.zombie_probability = variant.zombie_probability;
  config.disk_check_interval = variant.probe_interval;
  config.sites = hog::DefaultOsgSites();
  for (auto& site : config.sites) {
    site.node_mtbf_s = 1e9;  // all preemption comes from the injections
    site.burst_interval_s = 0;
  }
  hog::HogCluster cluster(seed, config);
  cluster.RequestNodes(55);
  if (!cluster.WaitForNodes(55, exp::kSpinUpDeadline)) {
    return {{"response_s", 0.0},
            {"failed_jobs", 0.0},
            {"attempts", 0.0},
            {"zombie_events", 0.0},
            {"zombies_left", 0.0}};
  }

  Rng rng(seed);
  workload::WorkloadConfig wl;
  auto schedule = workload::GenerateFacebookSchedule(rng, wl);
  if (fast) schedule.resize(schedule.size() / 2);
  workload::WorkloadRunner runner(cluster.sim(), cluster.jobtracker(),
                                  cluster.namenode(), wl);
  runner.PrepareInputs(schedule);
  const auto chaos = exp::ArmScenario(cluster, scenario);
  runner.SubmitAll(schedule);
  // The injected preemption schedule: identical across variants. Gentle
  // waves (20% of one site each) so the damage signal is the daemons'
  // fate, not raw capacity loss.
  for (int wave = 0; wave < 6; ++wave) {
    cluster.sim().ScheduleAfter((4 + 6 * wave) * kMinute,
                                [&cluster, wave] {
                                  cluster.grid().PreemptSiteFraction(
                                      static_cast<std::size_t>(wave % 5),
                                      0.2);
                                });
  }
  const auto result = runner.Run(cluster.sim().now() + exp::kRunDeadline);
  return {{"response_s", result.response_time_s},
          {"failed_jobs", static_cast<double>(result.failed)},
          {"attempts",
           static_cast<double>(cluster.jobtracker().attempts_launched())},
          {"zombie_events",
           static_cast<double>(cluster.grid().zombie_events())},
          {"zombies_left",
           static_cast<double>(cluster.grid().zombie_nodes())}};
}

}  // namespace

int main(int argc, char** argv) {
  exp::BenchOptions opts = exp::ParseBenchOptions(argc, argv);
  if (opts.fast) opts.seeds.resize(1);
  const fault::Scenario scenario = exp::LoadBenchScenario(opts);

  std::printf("§IV.D.1: abandoned (zombie) datanodes\n");
  std::printf("(identical 6-wave preemption injection; only the daemons' "
              "fate differs; %zu seed(s))\n\n", opts.seeds.size());
  exp::SweepSpec spec;
  spec.name = "exp_zombie_datanodes";
  spec.configs = std::size(kVariants);
  spec.config_labels = {"bug_no_probe", "probe_3min", "process_tree"};
  const bool fast = opts.fast;
  const exp::SweepResult sweep = exp::RunBenchSweep(
      opts, spec, [fast, &scenario](std::size_t config, std::uint64_t seed) {
        return Run(kVariants[config], seed, fast, scenario);
      });

  TextTable table({"variant", "response (s)", "failed jobs",
                   "attempts", "zombie events", "zombies at end"});
  for (std::size_t c = 0; c < spec.configs; ++c) {
    const auto& m = sweep.summaries[c];
    table.AddRow({kVariants[c].name, FormatDouble(m[0].stats.mean(), 0),
                  FormatDouble(m[1].stats.mean(), 1),
                  FormatDouble(m[2].stats.mean(), 0),
                  FormatDouble(m[3].stats.mean(), 1),
                  FormatDouble(m[4].stats.mean(), 1)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: under the bug EVERY zombie haunts the pool to the "
      "end — tasks keep landing on them and failing instantly, so jobs "
      "fail in droves (a failed job also ends early, which is why the "
      "buggy run's wall-clock 'response' can look short). The probe reaps "
      "zombies within ~3 minutes, cutting the failures; the process-tree "
      "fix never creates zombies and is the only variant that completes "
      "the whole workload.\n");
  const auto mean = [&](std::size_t c, std::size_t metric) {
    return sweep.summaries[c][metric].stats.mean();
  };
  std::printf("Failed jobs strictly improve bug -> probe -> process-tree: "
              "%s; zombies drained by the fixes: %s\n",
              (mean(0, 1) > mean(1, 1) && mean(1, 1) > mean(2, 1)) ? "YES"
                                                                   : "NO",
              (mean(0, 4) >= mean(0, 3) && mean(1, 4) <= 2 &&
               mean(2, 4) == 0)
                  ? "YES"
                  : "NO");
  return 0;
}
