// compare_bench — diff two BENCH_*.json baselines and flag regressions.
//
//   compare_bench BASELINE.json CANDIDATE.json [--tol=REL] [--quiet]
//
// A metric regresses when the candidate mean moves beyond the combined 95%
// CI of both files (plus --tol relative slack) in the metric's bad
// direction. Exit 0: clean; exit 1: regression(s); exit 2: usage/parse
// error. This is the one-command baseline check the BENCH convention
// promises future perf PRs (see ROADMAP.md).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>

#include "src/exp/bench_compare.h"
#include "src/util/strings.h"
#include "src/util/table.h"

using namespace hogsim;

namespace {

const char* VerdictName(exp::BenchComparison::Verdict v) {
  using Verdict = exp::BenchComparison::Verdict;
  switch (v) {
    case Verdict::kSame: return "same";
    case Verdict::kImproved: return "IMPROVED";
    case Verdict::kRegressed: return "REGRESSED";
    case Verdict::kBaselineOnly: return "missing in candidate";
    case Verdict::kCandidateOnly: return "new in candidate";
  }
  return "?";
}

[[noreturn]] void Usage() {
  std::fprintf(stderr,
               "usage: compare_bench BASELINE.json CANDIDATE.json "
               "[--tol=REL] [--quiet]\n"
               "  --tol=0.05  extra relative tolerance on top of the CIs\n"
               "  --quiet     print only regressions\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, candidate_path;
  double rel_tol = 0.0;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--quiet") {
      quiet = true;
    } else if (StartsWith(arg, "--tol=")) {
      const std::string value(arg.substr(6));
      char* end = nullptr;
      rel_tol = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || rel_tol < 0) Usage();
    } else if (StartsWith(arg, "--")) {
      Usage();
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (candidate_path.empty()) {
      candidate_path = arg;
    } else {
      Usage();
    }
  }
  if (baseline_path.empty() || candidate_path.empty()) Usage();

  exp::BenchFile baseline, candidate;
  try {
    baseline = exp::LoadBenchJson(baseline_path);
    candidate = exp::LoadBenchJson(candidate_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "compare_bench: %s\n", e.what());
    return 2;
  }
  if (baseline.name != candidate.name) {
    std::fprintf(stderr,
                 "compare_bench: warning: comparing '%s' against '%s'\n",
                 baseline.name.c_str(), candidate.name.c_str());
  }

  const auto comparisons = exp::CompareBench(baseline, candidate, rel_tol);
  TextTable table({"config", "metric", "baseline", "candidate", "delta",
                   "threshold", "verdict"});
  std::size_t regressions = 0;
  for (const auto& c : comparisons) {
    const bool regressed =
        c.verdict == exp::BenchComparison::Verdict::kRegressed;
    if (regressed) ++regressions;
    if (quiet && !regressed) continue;
    table.AddRow({c.config, c.metric, FormatDouble(c.baseline_mean, 4),
                  FormatDouble(c.candidate_mean, 4),
                  FormatDouble(c.delta, 4), FormatDouble(c.threshold, 4),
                  VerdictName(c.verdict)});
  }
  std::printf("compare_bench: %s vs %s (%zu metrics, tol %.3g)\n\n",
              baseline_path.c_str(), candidate_path.c_str(),
              comparisons.size(), rel_tol);
  if (table.rows() > 0) table.Print(std::cout);
  if (regressions > 0) {
    std::printf("\n%zu regression(s) beyond the 95%% CI.\n", regressions);
    return 1;
  }
  std::printf("\nNo regressions beyond the 95%% CI.\n");
  return 0;
}
