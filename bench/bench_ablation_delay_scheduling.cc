// Ablation: delay scheduling (Zaharia et al. — reference [3] of the
// paper, and the source of its workload) on HOG. HOG's replication factor
// 10 already buys excellent locality; delay scheduling is the scheduler-
// side alternative. This bench sweeps both levers across seeds: FIFO vs
// FIFO+delay at replication 3 and 10.
#include <cstdio>
#include <iostream>

#include "src/exp/paper_runs.h"
#include "src/exp/bench_main.h"
#include "src/util/table.h"

using namespace hogsim;

namespace {

struct Case {
  const char* name;
  int replication;
  SimDuration wait;
};

constexpr Case kCases[] = {
    {"rep 3, plain FIFO", 3, 0},
    {"rep 3, FIFO + delay 10 s", 3, 10 * kSecond},
    {"rep 10, plain FIFO (HOG)", 10, 0},
    {"rep 10, FIFO + delay 10 s", 10, 10 * kSecond},
};

exp::Metrics Run(const Case& c, std::uint64_t seed, bool fast,
                 const fault::Scenario& scenario) {
  hog::HogConfig config;
  config.replication = c.replication;
  config.mr.locality_wait_node = c.wait;
  config.mr.locality_wait_rack = c.wait;
  hog::HogCluster cluster(seed, config);
  cluster.RequestNodes(60);
  if (!cluster.WaitForNodes(60, exp::kSpinUpDeadline) &&
      !cluster.WaitForNodes(57, cluster.sim().now() + exp::kSpinUpDeadline)) {
    return {{"response_s", 0.0}, {"local_frac", 0.0}, {"remote_input_gib", 0.0}};
  }
  Rng rng(seed);
  workload::WorkloadConfig wl;
  auto schedule = workload::GenerateFacebookSchedule(rng, wl);
  if (fast) schedule.resize(schedule.size() / 2);
  workload::WorkloadRunner runner(cluster.sim(), cluster.jobtracker(),
                                  cluster.namenode(), wl);
  runner.PrepareInputs(schedule);
  const auto chaos = exp::ArmScenario(cluster, scenario);
  runner.SubmitAll(schedule);
  const auto result = runner.Run(cluster.sim().now() + exp::kRunDeadline);
  long long local = 0, rack = 0, remote = 0;
  Bytes remote_input = 0;
  for (std::size_t j = 0; j < cluster.jobtracker().job_count(); ++j) {
    const auto& job = cluster.jobtracker().job(static_cast<mr::JobId>(j));
    local += job.data_local_maps;
    rack += job.rack_local_maps;
    remote += job.remote_maps;
    remote_input += job.counters.remote_input_bytes;
  }
  const long long total = local + rack + remote;
  return {{"response_s", result.response_time_s},
          {"local_frac",
           total > 0 ? static_cast<double>(local) / static_cast<double>(total)
                     : 0.0},
          {"remote_input_gib",
           static_cast<double>(remote_input) / static_cast<double>(kGiB)}};
}

}  // namespace

int main(int argc, char** argv) {
  exp::BenchOptions opts = exp::ParseBenchOptions(argc, argv);
  if (opts.fast) opts.seeds.resize(1);
  const fault::Scenario scenario = exp::LoadBenchScenario(opts);

  std::printf("Ablation: delay scheduling vs replication as locality levers "
              "(60-node HOG; %zu seed(s))\n\n", opts.seeds.size());
  exp::SweepSpec spec;
  spec.name = "ablation_delay_scheduling";
  spec.configs = std::size(kCases);
  spec.config_labels = {"rep3_fifo", "rep3_delay10", "rep10_fifo",
                        "rep10_delay10"};
  const bool fast = opts.fast;
  const exp::SweepResult sweep = exp::RunBenchSweep(
      opts, spec, [fast, &scenario](std::size_t config, std::uint64_t seed) {
        return Run(kCases[config], seed, fast, scenario);
      });

  TextTable table({"scheduler", "response (s)", "node-local maps",
                   "remote input (GiB)"});
  for (std::size_t c = 0; c < spec.configs; ++c) {
    const auto& m = sweep.summaries[c];
    table.AddRow({kCases[c].name, FormatDouble(m[0].stats.mean(), 0),
                  FormatDouble(m[1].stats.mean() * 100, 1) + "%",
                  FormatDouble(m[2].stats.mean(), 1)});
  }
  table.Print(std::cout);
  std::printf(
      "\nMeasured shape: delay scheduling does raise the node-local "
      "fraction at either replication factor — but on an opportunistic "
      "grid it pays for that locality with wall-clock time: while a job "
      "waits for a 'better' node, freshly joined replacement glideins "
      "(which hold no replicas yet) sit idle. HOG's own lever — "
      "replication 10, which the paper credits with 'very good data "
      "locality' (§IV.D.2) — raises locality without idling slots, which "
      "is why the scheduler-side trick that shines on stable clusters is "
      "the wrong tool on a churning grid.\n");
  const auto local = [&](std::size_t c) {
    return sweep.summaries[c][1].stats.mean();
  };
  const auto response = [&](std::size_t c) {
    return sweep.summaries[c][0].stats.mean();
  };
  std::printf("Delay scheduling lifts locality: %s; but costs response "
              "under churn: %s\n",
              (local(1) > local(0) && local(3) > local(2)) ? "YES" : "NO",
              response(1) > response(0) ? "YES" : "NO");
  return 0;
}
