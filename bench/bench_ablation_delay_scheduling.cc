// Ablation: delay scheduling (Zaharia et al. — reference [3] of the
// paper, and the source of its workload) on HOG. HOG's replication factor
// 10 already buys excellent locality; delay scheduling is the scheduler-
// side alternative. This bench measures both levers: FIFO vs FIFO+delay at
// replication 3 and 10.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/util/table.h"

using namespace hogsim;

namespace {

struct Outcome {
  double response_s = 0;
  double local_fraction = 0;
  Bytes remote_input = 0;
};

Outcome Run(int replication, SimDuration wait) {
  hog::HogConfig config;
  config.replication = replication;
  config.mr.locality_wait_node = wait;
  config.mr.locality_wait_rack = wait;
  hog::HogCluster cluster(bench::kSeeds[0], config);
  cluster.RequestNodes(60);
  if (!cluster.WaitForNodes(60, bench::kSpinUpDeadline) &&
      !cluster.WaitForNodes(57, cluster.sim().now() + bench::kSpinUpDeadline)) {
    return {};
  }
  Rng rng(bench::kSeeds[0]);
  workload::WorkloadConfig wl;
  auto schedule = workload::GenerateFacebookSchedule(rng, wl);
  if (bench::FastMode()) schedule.resize(schedule.size() / 2);
  workload::WorkloadRunner runner(cluster.sim(), cluster.jobtracker(),
                                  cluster.namenode(), wl);
  runner.PrepareInputs(schedule);
  runner.SubmitAll(schedule);
  const auto result = runner.Run(cluster.sim().now() + bench::kRunDeadline);
  Outcome outcome;
  outcome.response_s = result.response_time_s;
  long long local = 0, rack = 0, remote = 0;
  for (std::size_t j = 0; j < cluster.jobtracker().job_count(); ++j) {
    const auto& job = cluster.jobtracker().job(static_cast<mr::JobId>(j));
    local += job.data_local_maps;
    rack += job.rack_local_maps;
    remote += job.remote_maps;
    outcome.remote_input += job.counters.remote_input_bytes;
  }
  const long long total = local + rack + remote;
  outcome.local_fraction =
      total > 0 ? static_cast<double>(local) / static_cast<double>(total) : 0;
  return outcome;
}

}  // namespace

int main() {
  std::printf("Ablation: delay scheduling vs replication as locality levers "
              "(60-node HOG)\n\n");
  struct Case {
    const char* name;
    int replication;
    SimDuration wait;
  };
  const Case cases[] = {
      {"rep 3, plain FIFO", 3, 0},
      {"rep 3, FIFO + delay 10 s", 3, 10 * kSecond},
      {"rep 10, plain FIFO (HOG)", 10, 0},
      {"rep 10, FIFO + delay 10 s", 10, 10 * kSecond},
  };
  TextTable table({"scheduler", "response (s)", "node-local maps",
                   "remote input"});
  std::vector<Outcome> outcomes;
  for (const Case& c : cases) {
    const Outcome o = Run(c.replication, c.wait);
    outcomes.push_back(o);
    table.AddRow({c.name, FormatDouble(o.response_s, 0),
                  FormatDouble(o.local_fraction * 100, 1) + "%",
                  FormatBytes(o.remote_input)});
  }
  table.Print(std::cout);
  std::printf(
      "\nMeasured shape: delay scheduling does raise the node-local "
      "fraction at either replication factor — but on an opportunistic "
      "grid it pays for that locality with wall-clock time: while a job "
      "waits for a 'better' node, freshly joined replacement glideins "
      "(which hold no replicas yet) sit idle. HOG's own lever — "
      "replication 10, which the paper credits with 'very good data "
      "locality' (§IV.D.2) — raises locality without idling slots, which "
      "is why the scheduler-side trick that shines on stable clusters is "
      "the wrong tool on a churning grid.\n");
  std::printf("Delay scheduling lifts locality: %s; but costs response "
              "under churn: %s\n",
              (outcomes[1].local_fraction > outcomes[0].local_fraction &&
               outcomes[3].local_fraction > outcomes[2].local_fraction)
                  ? "YES"
                  : "NO",
              (outcomes[1].response_s > outcomes[0].response_s) ? "YES"
                                                                : "NO");
  return 0;
}
