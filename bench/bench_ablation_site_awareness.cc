// Ablation for §III.B.1 — site awareness. HOG extends rack awareness to
// sites so that replicas spread across administrative failure domains.
// This bench kills an entire site mid-workload and compares site-aware
// placement against flat (topology-blind) placement at equal replication.
// The two placements are the sweep's configs; results aggregate across
// seeds.
#include <cstdio>
#include <iostream>

#include "src/exp/paper_runs.h"
#include "src/exp/bench_main.h"
#include "src/util/table.h"

using namespace hogsim;

namespace {

constexpr int kReplication = 4;

exp::Metrics Run(bool site_aware, std::uint64_t seed, bool fast,
                 const fault::Scenario& scenario) {
  hog::HogConfig config;
  config.site_awareness = site_aware;
  config.replication = kReplication;
  config.sites = hog::DefaultOsgSites();
  for (auto& site : config.sites) {
    site.node_mtbf_s = 1e9;  // isolate the site-outage effect
    site.burst_interval_s = 0;
  }
  hog::HogCluster cluster(seed, config);
  cluster.RequestNodes(60);
  if (!cluster.WaitForNodes(60, exp::kSpinUpDeadline)) {
    return {{"response_s", 0.0},
            {"failed_jobs", 0.0},
            {"missing_blocks", 0.0},
            {"data_local_maps", 0.0},
            {"remote_maps", 0.0}};
  }

  Rng rng(seed);
  workload::WorkloadConfig wl;
  auto schedule = workload::GenerateFacebookSchedule(rng, wl);
  if (fast) schedule.resize(schedule.size() / 2);
  workload::WorkloadRunner runner(cluster.sim(), cluster.jobtracker(),
                                  cluster.namenode(), wl);
  runner.PrepareInputs(schedule);
  const auto chaos = exp::ArmScenario(cluster, scenario);
  runner.SubmitAll(schedule);
  // Whole-site outage ("a core network component failure, or a large
  // power outage") 5 minutes into the workload.
  cluster.sim().ScheduleAfter(5 * kMinute, [&cluster] {
    cluster.grid().PreemptSiteFraction(0, 1.0);
  });
  const auto result = runner.Run(cluster.sim().now() + exp::kRunDeadline);
  long long data_local = 0, remote = 0;
  for (std::size_t j = 0; j < cluster.jobtracker().job_count(); ++j) {
    const auto& job = cluster.jobtracker().job(static_cast<mr::JobId>(j));
    data_local += job.data_local_maps;
    remote += job.remote_maps;
  }
  return {{"response_s", result.response_time_s},
          {"failed_jobs", static_cast<double>(result.failed)},
          {"missing_blocks",
           static_cast<double>(cluster.namenode().missing_blocks())},
          {"data_local_maps", static_cast<double>(data_local)},
          {"remote_maps", static_cast<double>(remote)}};
}

}  // namespace

int main(int argc, char** argv) {
  exp::BenchOptions opts = exp::ParseBenchOptions(argc, argv);
  if (opts.fast) opts.seeds.resize(1);
  const fault::Scenario scenario = exp::LoadBenchScenario(opts);

  std::printf("Ablation: site awareness under a whole-site outage "
              "(§III.B.1; %zu seed(s))\n", opts.seeds.size());
  std::printf("(replication %d to make placement quality matter; site 0 "
              "dies at t+5 min)\n\n", kReplication);
  exp::SweepSpec spec;
  spec.name = "ablation_site_awareness";
  spec.configs = 2;
  spec.config_labels = {"site_aware", "flat"};
  const bool fast = opts.fast;
  const exp::SweepResult sweep = exp::RunBenchSweep(
      opts, spec, [fast, &scenario](std::size_t config, std::uint64_t seed) {
        return Run(config == 0, seed, fast, scenario);
      });

  const char* names[] = {"hog-site-aware", "flat (topology-blind)"};
  TextTable table({"placement", "response (s)", "failed jobs",
                   "missing blocks", "node-local maps", "remote maps"});
  for (std::size_t c = 0; c < spec.configs; ++c) {
    const auto& m = sweep.summaries[c];
    table.AddRow({names[c], FormatDouble(m[0].stats.mean(), 0),
                  FormatDouble(m[1].stats.mean(), 1),
                  FormatDouble(m[2].stats.mean(), 1),
                  FormatDouble(m[3].stats.mean(), 0),
                  FormatDouble(m[4].stats.mean(), 0)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: site-aware placement guarantees replicas outside "
      "the failed site, so no blocks go missing; blind placement can lose "
      "all copies of a block to one site (paper: sites are the natural "
      "failure domain of the grid).\n");
  const auto missing = [&](std::size_t c) {
    return sweep.summaries[c][2].stats.mean();
  };
  std::printf("Site awareness avoids data loss at least as well as flat: "
              "%s\n", missing(0) <= missing(1) ? "YES" : "NO");
  return 0;
}
