// Ablation for §III.B.1 — site awareness. HOG extends rack awareness to
// sites so that replicas spread across administrative failure domains.
// This bench kills an entire site mid-workload and compares site-aware
// placement against flat (topology-blind) placement at equal replication.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/util/table.h"

using namespace hogsim;

namespace {

struct Outcome {
  double response_s = 0;
  int failed_jobs = 0;
  std::size_t missing_blocks = 0;
  int data_local = 0;
  int remote = 0;
};

Outcome Run(bool site_aware, int replication) {
  hog::HogConfig config;
  config.site_awareness = site_aware;
  config.replication = replication;
  config.sites = hog::DefaultOsgSites();
  for (auto& site : config.sites) {
    site.node_mtbf_s = 1e9;  // isolate the site-outage effect
    site.burst_interval_s = 0;
  }
  hog::HogCluster cluster(bench::kSeeds[2], config);
  cluster.RequestNodes(60);
  if (!cluster.WaitForNodes(60, bench::kSpinUpDeadline)) return {};

  Rng rng(bench::kSeeds[2]);
  workload::WorkloadConfig wl;
  auto schedule = workload::GenerateFacebookSchedule(rng, wl);
  if (bench::FastMode()) schedule.resize(schedule.size() / 2);
  workload::WorkloadRunner runner(cluster.sim(), cluster.jobtracker(),
                                  cluster.namenode(), wl);
  runner.PrepareInputs(schedule);
  runner.SubmitAll(schedule);
  // Whole-site outage ("a core network component failure, or a large
  // power outage") 5 minutes into the workload.
  cluster.sim().ScheduleAfter(5 * kMinute, [&cluster] {
    cluster.grid().PreemptSiteFraction(0, 1.0);
  });
  const auto result = runner.Run(cluster.sim().now() + bench::kRunDeadline);
  Outcome outcome;
  outcome.response_s = result.response_time_s;
  outcome.failed_jobs = result.failed;
  outcome.missing_blocks = cluster.namenode().missing_blocks();
  for (std::size_t j = 0; j < cluster.jobtracker().job_count(); ++j) {
    const auto& job = cluster.jobtracker().job(static_cast<mr::JobId>(j));
    outcome.data_local += job.data_local_maps;
    outcome.remote += job.remote_maps;
  }
  return outcome;
}

}  // namespace

int main() {
  std::printf("Ablation: site awareness under a whole-site outage "
              "(§III.B.1)\n");
  std::printf("(replication 4 to make placement quality matter; site 0 "
              "dies at t+5 min)\n\n");
  TextTable table({"placement", "response (s)", "failed jobs",
                   "missing blocks", "node-local maps", "remote maps"});
  const Outcome aware = Run(true, 4);
  const Outcome flat = Run(false, 4);
  table.AddRow({"hog-site-aware", FormatDouble(aware.response_s, 0),
                std::to_string(aware.failed_jobs),
                std::to_string(aware.missing_blocks),
                std::to_string(aware.data_local),
                std::to_string(aware.remote)});
  table.AddRow({"flat (topology-blind)", FormatDouble(flat.response_s, 0),
                std::to_string(flat.failed_jobs),
                std::to_string(flat.missing_blocks),
                std::to_string(flat.data_local),
                std::to_string(flat.remote)});
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: site-aware placement guarantees replicas outside "
      "the failed site, so no blocks go missing; blind placement can lose "
      "all copies of a block to one site (paper: sites are the natural "
      "failure domain of the grid).\n");
  std::printf("Site awareness avoids data loss at least as well as flat: "
              "%s\n",
              aware.missing_blocks <= flat.missing_blocks ? "YES" : "NO");
  return 0;
}
