// Reproduces Table I — "Facebook production workload": the nine job-size
// bins with their Facebook share and the benchmark's map/job counts — and
// verifies that the generated schedule realizes the benchmark mix.
#include <cstdio>
#include <iostream>
#include <map>

#include "src/util/strings.h"
#include "src/util/table.h"
#include "src/workload/facebook.h"

using namespace hogsim;

int main() {
  std::printf("Table I: Facebook production workload (paper, verbatim)\n\n");
  TextTable table({"Bin", "#Maps at Facebook", "%Jobs at Facebook",
                   "#Maps in Benchmark", "# of jobs in Benchmark"});
  for (const auto& bin : workload::FacebookTable1()) {
    table.AddRow({std::to_string(bin.bin), bin.maps_label,
                  FormatDouble(bin.fraction * 100, 0) + "%",
                  std::to_string(bin.maps), std::to_string(bin.jobs)});
  }
  table.Print(std::cout);

  // The benchmark uses bins 1-6 (~89% of Facebook's jobs). Check the
  // generated schedule realizes exactly that mix, for several seeds.
  std::printf("\nGenerated schedule check (bins 1-6, 88 jobs):\n\n");
  TextTable check({"seed", "jobs", "bin counts (1..6)", "schedule length"});
  for (std::uint64_t seed : {11ull, 23ull, 47ull}) {
    Rng rng(seed);
    const auto schedule = workload::GenerateFacebookSchedule(rng);
    std::map<int, int> by_bin;
    for (const auto& job : schedule) by_bin[job.bin]++;
    std::string counts;
    for (int b = 1; b <= 6; ++b) {
      if (b > 1) counts += "/";
      counts += std::to_string(by_bin[b]);
    }
    check.AddRow({std::to_string(seed), std::to_string(schedule.size()),
                  counts, FormatDuration(schedule.back().submit_time)});
  }
  check.Print(std::cout);
  double covered = 0;
  for (const auto& bin : workload::FacebookTable1()) {
    if (bin.bin <= 6) covered += bin.fraction;
  }
  std::printf(
      "\nBins 1-6 cover %.0f%% of Facebook's jobs (paper: ~89%%); mean "
      "inter-arrival 14 s (exponential) => ~21 min schedule.\n",
      covered * 100);
  return 0;
}
