// Reproduces Table I — "Facebook production workload": the nine job-size
// bins with their Facebook share and the benchmark's map/job counts — and
// sweeps generated schedules across seeds to verify each one realizes the
// benchmark mix exactly.
#include <cstdio>
#include <iostream>
#include <map>

#include "src/exp/bench_main.h"
#include "src/util/strings.h"
#include "src/util/table.h"
#include "src/workload/facebook.h"

using namespace hogsim;

int main(int argc, char** argv) {
  const exp::BenchOptions opts = exp::ParseBenchOptions(argc, argv);

  std::printf("Table I: Facebook production workload (paper, verbatim)\n\n");
  TextTable table({"Bin", "#Maps at Facebook", "%Jobs at Facebook",
                   "#Maps in Benchmark", "# of jobs in Benchmark"});
  for (const auto& bin : workload::FacebookTable1()) {
    table.AddRow({std::to_string(bin.bin), bin.maps_label,
                  FormatDouble(bin.fraction * 100, 0) + "%",
                  std::to_string(bin.maps), std::to_string(bin.jobs)});
  }
  table.Print(std::cout);

  // The benchmark uses bins 1-6 (~89% of Facebook's jobs). Sweep the
  // generator: every seed must realize exactly that mix.
  exp::SweepSpec spec;
  spec.name = "table1";
  spec.configs = 1;
  spec.config_labels = {"facebook_mix"};
  const exp::SweepResult sweep = exp::RunBenchSweep(
      opts, spec, [](std::size_t, std::uint64_t seed) -> exp::Metrics {
        Rng rng(seed);
        const auto schedule = workload::GenerateFacebookSchedule(rng);
        std::map<int, int> by_bin;
        for (const auto& job : schedule) by_bin[job.bin]++;
        exp::Metrics metrics = {
            {"jobs", static_cast<double>(schedule.size())}};
        for (int b = 1; b <= 6; ++b) {
          metrics.emplace_back("bin" + std::to_string(b),
                               static_cast<double>(by_bin[b]));
        }
        metrics.emplace_back("schedule_len_s",
                             ToSeconds(schedule.back().submit_time));
        return metrics;
      });

  std::printf("\nGenerated schedule check (bins 1-6, 88 jobs):\n\n");
  TextTable check({"seed", "jobs", "bin counts (1..6)", "schedule length"});
  for (std::size_t s = 0; s < spec.seeds.size(); ++s) {
    const exp::RunRecord& run = sweep.run(0, s, spec.seeds.size());
    std::string counts;
    for (std::size_t m = 1; m <= 6; ++m) {
      if (m > 1) counts += "/";
      counts += FormatDouble(run.metrics[m].second, 0);
    }
    check.AddRow({std::to_string(run.seed),
                  FormatDouble(run.metrics[0].second, 0), counts,
                  FormatDuration(FromSeconds(run.metrics[7].second))});
  }
  check.Print(std::cout);

  double covered = 0;
  for (const auto& bin : workload::FacebookTable1()) {
    if (bin.bin <= 6) covered += bin.fraction;
  }
  const auto& jobs = sweep.summaries[0][0].stats;
  std::printf(
      "\nBins 1-6 cover %.0f%% of Facebook's jobs (paper: ~89%%); mean "
      "inter-arrival 14 s (exponential) => ~21 min schedule.\n",
      covered * 100);
  std::printf("Mix exact for all %zu seeds: %s (88 jobs each)\n",
              spec.seeds.size(),
              (jobs.min() == 88 && jobs.max() == 88) ? "YES" : "NO");
  return 0;
}
