// Ablation for §III.B.1 — replication factor under correlated preemption.
// The paper raises HDFS replication from 3 to 10 because simultaneous
// preemptions routinely outrun re-replication. This bench sweeps the
// replication factor under bursty preemption and reports data
// availability and workload response.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/util/table.h"

using namespace hogsim;

namespace {

struct Outcome {
  double response_s = 0;
  int failed_jobs = 0;
  std::size_t missing_blocks = 0;
  std::uint64_t replications = 0;
  Bytes replication_bytes = 0;
};

Outcome Run(int replication) {
  hog::HogConfig config;
  config.replication = replication;
  config.sites = hog::DefaultOsgSites();
  for (auto& site : config.sites) {
    site.node_mtbf_s = 5400.0;
    site.burst_interval_s = 900.0;  // simultaneous preemptions are common
    site.burst_fraction = 0.15;
  }
  hog::HogCluster cluster(bench::kSeeds[1], config);
  cluster.RequestNodes(60);
  if (!cluster.WaitForNodes(60, bench::kSpinUpDeadline) &&
      !cluster.WaitForNodes(57, cluster.sim().now() + bench::kSpinUpDeadline)) {
    return {};
  }
  Rng rng(bench::kSeeds[1]);
  workload::WorkloadConfig wl;
  auto schedule = workload::GenerateFacebookSchedule(rng, wl);
  if (bench::FastMode()) schedule.resize(schedule.size() / 2);
  workload::WorkloadRunner runner(cluster.sim(), cluster.jobtracker(),
                                  cluster.namenode(), wl);
  runner.PrepareInputs(schedule);
  runner.SubmitAll(schedule);
  const auto result = runner.Run(cluster.sim().now() + bench::kRunDeadline);
  Outcome outcome;
  outcome.response_s = result.response_time_s;
  outcome.failed_jobs = result.failed;
  outcome.missing_blocks = cluster.namenode().missing_blocks();
  outcome.replications = cluster.namenode().replications_completed();
  outcome.replication_bytes = cluster.namenode().replication_bytes();
  return outcome;
}

}  // namespace

int main() {
  std::printf("Ablation: HDFS replication factor under bursty preemption "
              "(§III.B.1; paper picks 10)\n\n");
  TextTable table({"replication", "response (s)", "failed jobs",
                   "missing blocks", "re-replications", "re-repl traffic"});
  std::vector<Outcome> outcomes;
  const int factors[] = {2, 3, 10};
  for (int rep : factors) {
    const Outcome o = Run(rep);
    outcomes.push_back(o);
    table.AddRow({std::to_string(rep), FormatDouble(o.response_s, 0),
                  std::to_string(o.failed_jobs),
                  std::to_string(o.missing_blocks),
                  std::to_string(o.replications),
                  FormatBytes(o.replication_bytes)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: low replication risks missing blocks / failed or "
      "stalled jobs when bursts outrun the replication monitor; replication "
      "10 keeps data available at the cost of heavier re-replication "
      "traffic (the paper's trade-off: 'too many replicas would impose "
      "extra overhead ... too few would cause frequent data failures').\n");
  return 0;
}
