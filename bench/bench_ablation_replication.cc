// Ablation for §III.B.1 — replication factor under correlated preemption.
// The paper raises HDFS replication from 3 to 10 because simultaneous
// preemptions routinely outrun re-replication. This bench sweeps the
// replication factor under bursty preemption and reports data
// availability and workload response. Each factor is a config; results
// aggregate across seeds.
#include <cstdio>
#include <iostream>

#include "src/exp/paper_runs.h"
#include "src/exp/bench_main.h"
#include "src/util/table.h"

using namespace hogsim;

namespace {

constexpr int kFactors[] = {2, 3, 10};

exp::Metrics Run(int replication, std::uint64_t seed, bool fast,
                 const fault::Scenario& scenario) {
  hog::HogConfig config;
  config.replication = replication;
  config.sites = hog::DefaultOsgSites();
  for (auto& site : config.sites) {
    site.node_mtbf_s = 5400.0;
    site.burst_interval_s = 900.0;  // simultaneous preemptions are common
    site.burst_fraction = 0.15;
  }
  hog::HogCluster cluster(seed, config);
  cluster.RequestNodes(60);
  if (!cluster.WaitForNodes(60, exp::kSpinUpDeadline) &&
      !cluster.WaitForNodes(57, cluster.sim().now() + exp::kSpinUpDeadline)) {
    return {{"response_s", 0.0},
            {"failed_jobs", 0.0},
            {"missing_blocks", 0.0},
            {"replications", 0.0},
            {"replication_gib", 0.0}};
  }
  Rng rng(seed);
  workload::WorkloadConfig wl;
  auto schedule = workload::GenerateFacebookSchedule(rng, wl);
  if (fast) schedule.resize(schedule.size() / 2);
  workload::WorkloadRunner runner(cluster.sim(), cluster.jobtracker(),
                                  cluster.namenode(), wl);
  runner.PrepareInputs(schedule);
  const auto chaos = exp::ArmScenario(cluster, scenario);
  runner.SubmitAll(schedule);
  const auto result = runner.Run(cluster.sim().now() + exp::kRunDeadline);
  return {{"response_s", result.response_time_s},
          {"failed_jobs", static_cast<double>(result.failed)},
          {"missing_blocks",
           static_cast<double>(cluster.namenode().missing_blocks())},
          {"replications",
           static_cast<double>(cluster.namenode().replications_completed())},
          {"replication_gib",
           static_cast<double>(cluster.namenode().replication_bytes()) /
               static_cast<double>(kGiB)}};
}

}  // namespace

int main(int argc, char** argv) {
  exp::BenchOptions opts = exp::ParseBenchOptions(argc, argv);
  if (opts.fast) opts.seeds.resize(1);
  const fault::Scenario scenario = exp::LoadBenchScenario(opts);

  std::printf("Ablation: HDFS replication factor under bursty preemption "
              "(§III.B.1; paper picks 10; %zu seed(s))\n\n",
              opts.seeds.size());
  exp::SweepSpec spec;
  spec.name = "ablation_replication";
  spec.configs = std::size(kFactors);
  spec.config_labels = {"rep2", "rep3", "rep10"};
  const bool fast = opts.fast;
  const exp::SweepResult sweep = exp::RunBenchSweep(
      opts, spec, [fast, &scenario](std::size_t config, std::uint64_t seed) {
        return Run(kFactors[config], seed, fast, scenario);
      });

  TextTable table({"replication", "response (s)", "failed jobs",
                   "missing blocks", "re-replications", "re-repl (GiB)"});
  for (std::size_t c = 0; c < spec.configs; ++c) {
    const auto& m = sweep.summaries[c];
    table.AddRow({std::to_string(kFactors[c]),
                  FormatDouble(m[0].stats.mean(), 0),
                  FormatDouble(m[1].stats.mean(), 1),
                  FormatDouble(m[2].stats.mean(), 1),
                  FormatDouble(m[3].stats.mean(), 0),
                  FormatDouble(m[4].stats.mean(), 1)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: low replication risks missing blocks / failed or "
      "stalled jobs when bursts outrun the replication monitor; replication "
      "10 keeps data available at the cost of heavier re-replication "
      "traffic (the paper's trade-off: 'too many replicas would impose "
      "extra overhead ... too few would cause frequent data failures').\n");
  const auto missing = [&](std::size_t c) {
    return sweep.summaries[c][2].stats.mean();
  };
  std::printf("Replication 10 loses no more data than 2: %s\n",
              missing(2) <= missing(0) ? "YES" : "NO");
  return 0;
}
