// Reproduces Figure 5 — "HOG Node Fluctuation": the jobtracker-reported
// live-node count over time for three 55-node executions of the Facebook
// workload — two on comparatively stable grids (a, b) and one on an
// unstable grid (c). The reported count momentarily exceeds 55 when nodes
// die but have not yet hit their 30 s heartbeat timeout, exactly as the
// paper notes.
//
// Sweep layout: one config ("hog55"); each seed is one of the paper's
// executions, and the LAST seed runs on the unstable grid (run c). With
// the default three seeds this is exactly the paper's a/b/c trio.
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/exp/paper_runs.h"
#include "src/exp/bench_main.h"
#include "src/util/table.h"

using namespace hogsim;

namespace {

hog::HogConfig StableGrid() { return {}; }

hog::HogConfig UnstableGrid() {
  hog::HogConfig config;
  config.sites = hog::DefaultOsgSites();
  for (auto& site : config.sites) {
    site.node_mtbf_s = 3200.0;       // busier owners
    site.burst_interval_s = 600.0;   // frequent higher-priority bursts
    site.burst_fraction = 0.18;
  }
  return config;
}

void PrintRun(char label, bool unstable, const exp::HogRunResult& result) {
  std::printf("\nFig. 5%c (%s): response %.0f s, area %.0f node-s, mean "
              "%.1f reported nodes, %llu preemptions\n",
              label, unstable ? "55 unstable nodes" : "55 stable nodes",
              result.workload.response_time_s, result.area_beneath_curve,
              result.mean_reported_nodes,
              static_cast<unsigned long long>(result.preemptions));
  // Downsampled trace (ASCII): reported nodes every ~5% of the run.
  const SimDuration step =
      std::max<SimDuration>(kMinute, (result.window_end - result.window_start) / 20);
  std::printf("  t(s)    nodes  |bar (each # = 2 nodes)\n");
  for (const auto& [t, v] :
       result.reported_nodes.Sample(result.window_start, result.window_end,
                                    step)) {
    std::printf("  %6.0f  %5.0f  |%s\n",
                ToSeconds(t - result.window_start), v,
                std::string(static_cast<std::size_t>(v / 2), '#').c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  exp::BenchOptions opts = exp::ParseBenchOptions(argc, argv);
  // Fast mode: one stable run and the unstable run.
  if (opts.fast && opts.seeds.size() > 2) {
    opts.seeds = {opts.seeds.front(), opts.seeds.back()};
  }

  const fault::Scenario scenario = exp::LoadBenchScenario(opts);

  std::printf("Fig. 5: HOG node fluctuation (%zu 55-node executions)\n",
              opts.seeds.size());
  // Runs a, b, ...: default (stable-ish) grid with different seeds; the
  // final run: an unstable grid. The paper's three runs differed by the
  // grid's mood during execution; seeds play that role here. The runs
  // execute in parallel on the sweep harness with per-seed results
  // identical to running them back to back.
  exp::SweepSpec spec;
  spec.name = "fig5";
  spec.configs = 1;
  spec.config_labels = {"hog55"};
  const std::vector<std::uint64_t>& seeds = opts.seeds;
  std::vector<exp::HogRunResult> runs(seeds.size());
  exp::RunBenchSweep(
      opts, spec, [&](std::size_t, std::uint64_t seed) -> exp::Metrics {
        std::size_t idx = 0;
        while (seeds[idx] != seed) ++idx;
        const bool unstable = idx + 1 == seeds.size();
        exp::HogRunOptions ropts;
        ropts.repl_target = opts.repl_target;
        ropts.topology = opts.topology;
        ropts.detector = opts.detector;
        runs[idx] = exp::RunHogWorkload(
            55, seed, unstable ? UnstableGrid() : StableGrid(), &scenario,
            ropts);
        return {{"response_s", runs[idx].workload.response_time_s},
                {"area_node_s", runs[idx].area_beneath_curve}};
      });
  for (std::size_t idx = 0; idx < runs.size(); ++idx) {
    PrintRun(static_cast<char>('a' + idx), idx + 1 == runs.size(),
             runs[idx]);
  }

  std::printf("\nExpected shape (paper): the unstable run (last) shows "
              "larger node swings, the longest response time and the "
              "largest area-beneath-curve deviation per second; reported "
              "counts briefly exceed 55 after preemptions.\n");
  return 0;
}
