// Chaos bench: the Facebook workload on a 55-node HOG deployment under a
// declarative fault scenario (src/fault). Without --scenario this is a
// clean control run; with one (e.g. scenarios/site_storm.txt) the same
// faults hit every seed at the same workload-relative instants, so the
// sweep measures recovery cost, not luck. Pairs with compare_bench: keep a
// BENCH_scenario_storm.json produced under a committed scenario and any
// regression in re-execution or recovery shows up as a CI-overlap failure.
//
//   bench_scenario_storm --fast --scenario=scenarios/site_storm.txt
//
// The sweep is byte-deterministic across --threads settings: scenarios are
// armed per-run on that run's own Simulation and draw no run RNG.
#include <cstdio>
#include <iostream>

#include "src/exp/paper_runs.h"
#include "src/exp/bench_main.h"
#include "src/util/table.h"

using namespace hogsim;

int main(int argc, char** argv) {
  exp::BenchOptions opts = exp::ParseBenchOptions(argc, argv);
  if (opts.fast) opts.seeds.resize(1);
  const fault::Scenario scenario = exp::LoadBenchScenario(opts);

  std::printf("Scenario storm: 55-node HOG under injected faults "
              "(%zu seed(s))\n", opts.seeds.size());
  if (scenario.empty()) {
    std::printf("(no --scenario given: clean control run — try "
                "--scenario=scenarios/site_storm.txt)\n\n");
  } else {
    std::printf("(scenario \"%s\": %zu action(s))\n\n",
                scenario.name.c_str(), scenario.actions.size());
  }

  exp::SweepSpec spec;
  spec.name = "scenario_storm";
  spec.configs = 1;
  spec.config_labels = {"hog55"};
  // --audit arms the fail-fast invariant auditor: the storm then proves
  // not just that jobs survive, but that every layer stays consistent.
  exp::HogRunOptions ropts;
  ropts.audit = opts.audit;
  ropts.audit_fail_fast = true;
  ropts.repl_target = opts.repl_target;
  ropts.topology = opts.topology;
  ropts.detector = opts.detector;
  const exp::SweepResult sweep = exp::RunBenchSweep(
      opts, spec,
      [&scenario, &ropts](std::size_t, std::uint64_t seed) -> exp::Metrics {
        const auto result = exp::RunHogWorkload(55, seed, {}, &scenario, ropts);
        return {{"response_s", result.workload.response_time_s},
                {"failed_jobs",
                 static_cast<double>(result.workload.failed)},
                {"preemptions", static_cast<double>(result.preemptions)},
                {"maps_reexecuted",
                 static_cast<double>(result.maps_reexecuted)},
                {"faults_injected",
                 static_cast<double>(result.faults_injected)}};
      });

  TextTable table({"metric", "mean", "ci95"});
  const char* names[] = {"response (s)", "failed jobs", "preemptions",
                         "maps re-executed", "faults injected"};
  for (std::size_t m = 0; m < std::size(names); ++m) {
    const exp::MetricSummary& summary = sweep.summaries[0][m];
    table.AddRow({names[m], FormatDouble(summary.stats.mean(), 1),
                  "+-" + FormatDouble(summary.ci95_halfwidth, 1)});
  }
  table.Print(std::cout);
  std::printf(
      "\nReading the table: `faults injected` counts scenario actions that "
      "actually landed (see the fault.* counters in --metrics-out for the "
      "per-kind split); preemptions and re-executed maps show what the "
      "storm cost, response what the recovery machinery bought back.\n");
  return 0;
}
