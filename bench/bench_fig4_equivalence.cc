// Reproduces Figure 4 — "HOG vs. Cluster Equivalent Performance": the
// Facebook workload's response time on HOG deployments of the paper's
// sampled sizes (40..1101 nodes, 3 runs each) against the dedicated
// 100-core cluster's constant baseline. The paper's headline: HOG needs
// [99,100] nodes for equivalent performance.
//
// HOGSIM_FAST=1 trims to one seed and a subset of points.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/util/table.h"

using namespace hogsim;

int main() {
  // The paper's x-axis sampling points.
  std::vector<int> points = {40, 50, 55, 60, 99, 100, 132, 160, 171, 180,
                             974, 1101};
  int seeds = 3;
  if (bench::FastMode()) {
    points = {55, 100, 180};
    seeds = 1;
  }

  std::printf("Fig. 4: HOG vs. cluster equivalent performance\n");
  std::printf("(Facebook workload; %d run(s) per point)\n\n", seeds);

  // Baseline: the dashed line.
  RunningStats cluster;
  for (int i = 0; i < seeds; ++i) {
    cluster.Add(bench::RunClusterWorkload(bench::kSeeds[i]).response_time_s);
  }
  std::printf("Dedicated cluster (100 cores): %.0f s\n\n", cluster.mean());

  TextTable table({"max nodes", "run1 (s)", "run2 (s)", "run3 (s)",
                   "mean (s)", "vs cluster", "preempt/run"});
  double prev_mean = -1;
  int crossover = -1;
  int prev_point = -1;
  for (int nodes : points) {
    RunningStats stats;
    RunningStats preempts;
    std::vector<std::string> row = {std::to_string(nodes), "-", "-", "-"};
    for (int i = 0; i < seeds; ++i) {
      const auto result = bench::RunHogWorkload(nodes, bench::kSeeds[i]);
      if (!result.reached_target) {
        row[static_cast<std::size_t>(1 + i)] = "unreached";
        continue;
      }
      stats.Add(result.workload.response_time_s);
      preempts.Add(static_cast<double>(result.preemptions));
      row[static_cast<std::size_t>(1 + i)] =
          FormatDouble(result.workload.response_time_s, 0);
    }
    row.push_back(FormatDouble(stats.mean(), 0));
    row.push_back(FormatDouble(stats.mean() / cluster.mean(), 2) + "x");
    row.push_back(FormatDouble(preempts.mean(), 0));
    table.AddRow(std::move(row));
    if (crossover < 0 && prev_mean > cluster.mean() &&
        stats.mean() <= cluster.mean()) {
      // Linear interpolation between the two sampling points.
      crossover = prev_point +
                  static_cast<int>((prev_mean - cluster.mean()) /
                                   (prev_mean - stats.mean()) *
                                   (nodes - prev_point));
    }
    prev_mean = stats.mean();
    prev_point = nodes;
  }
  table.Print(std::cout);

  if (crossover > 0) {
    std::printf("\nEquivalent performance at ~%d HOG nodes "
                "(paper: [99,100]).\n", crossover);
  } else {
    std::printf("\nNo crossover detected in the sampled range.\n");
  }
  std::printf("Expected shape: response decreases with nodes but not "
              "monotonically (churn), with diminishing returns toward 1101 "
              "nodes (§IV.C).\n");
  return 0;
}
