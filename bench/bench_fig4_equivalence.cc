// Reproduces Figure 4 — "HOG vs. Cluster Equivalent Performance": the
// Facebook workload's response time on HOG deployments of the paper's
// sampled sizes (40..1101 nodes, 3 runs each) against the dedicated
// 100-core cluster's constant baseline. The paper's headline: HOG needs
// [99,100] nodes for equivalent performance.
//
// Sweep layout: config 0 is the dedicated cluster, configs 1..N the HOG
// sampling points; all (config, seed) runs execute in parallel on the
// exp::Sweep pool with per-run results identical to sequential execution.
// --fast (or HOGSIM_FAST=1) trims to one seed and a subset of points.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/exp/paper_runs.h"
#include "src/exp/bench_main.h"
#include "src/util/table.h"

using namespace hogsim;

int main(int argc, char** argv) {
  exp::BenchOptions opts = exp::ParseBenchOptions(argc, argv);
  // The paper's x-axis sampling points.
  std::vector<int> points = {40, 50, 55, 60, 99, 100, 132, 160, 171, 180,
                             974, 1101};
  if (opts.fast) {
    points = {55, 100, 180};
    opts.seeds.resize(1);
  }

  const fault::Scenario scenario = exp::LoadBenchScenario(opts);

  std::printf("Fig. 4: HOG vs. cluster equivalent performance\n");
  std::printf("(Facebook workload; %zu run(s) per point)\n\n",
              opts.seeds.size());

  exp::SweepSpec spec;
  spec.name = "fig4";
  spec.configs = 1 + points.size();
  spec.config_labels = {"cluster100"};
  for (int nodes : points) {
    spec.config_labels.push_back("hog" + std::to_string(nodes));
  }
  exp::HogRunOptions ropts;
  ropts.repl_target = opts.repl_target;
  ropts.topology = opts.topology;
  ropts.detector = opts.detector;
  const exp::SweepResult sweep = exp::RunBenchSweep(
      opts, spec,
      [&points, &scenario, &ropts](std::size_t config,
                                   std::uint64_t seed) -> exp::Metrics {
        if (config == 0) {
          const auto result = exp::RunClusterWorkload(seed);
          return {{"response_s", result.response_time_s},
                  {"preemptions", 0.0},
                  {"reached", 1.0}};
        }
        const int nodes = points[config - 1];
        const auto result =
            exp::RunHogWorkload(nodes, seed, {}, &scenario, ropts);
        // An unreached deployment target leaves the response unmeasurable;
        // NaN serializes as null and is excluded from the summaries.
        const double response = result.reached_target
                                    ? result.workload.response_time_s
                                    : std::nan("");
        return {{"response_s", response},
                {"preemptions", static_cast<double>(result.preemptions)},
                {"reached", result.reached_target ? 1.0 : 0.0}};
      });

  const std::size_t n_seeds = spec.seeds.size();
  const double cluster_mean = sweep.summaries[0][0].stats.mean();
  std::printf("\nDedicated cluster (100 cores): %.0f s\n\n", cluster_mean);

  TextTable table({"max nodes", "runs (s)", "mean (s)", "ci95", "vs cluster",
                   "preempt/run"});
  double prev_mean = -1;
  int crossover = -1;
  int prev_point = -1;
  for (std::size_t c = 1; c < spec.configs; ++c) {
    const int nodes = points[c - 1];
    std::string per_seed;
    for (std::size_t s = 0; s < n_seeds; ++s) {
      const exp::RunRecord& run = sweep.run(c, s, n_seeds);
      if (s) per_seed += " / ";
      per_seed += std::isfinite(run.metrics[0].second)
                      ? FormatDouble(run.metrics[0].second, 0)
                      : "unreached";
    }
    const exp::MetricSummary& response = sweep.summaries[c][0];
    const exp::MetricSummary& preempts = sweep.summaries[c][1];
    table.AddRow({std::to_string(nodes), per_seed,
                  FormatDouble(response.stats.mean(), 0),
                  "+-" + FormatDouble(response.ci95_halfwidth, 0),
                  FormatDouble(response.stats.mean() / cluster_mean, 2) + "x",
                  FormatDouble(preempts.stats.mean(), 0)});
    if (crossover < 0 && prev_mean > cluster_mean &&
        response.stats.mean() <= cluster_mean &&
        response.stats.count() > 0) {
      // Linear interpolation between the two sampling points.
      crossover = prev_point +
                  static_cast<int>((prev_mean - cluster_mean) /
                                   (prev_mean - response.stats.mean()) *
                                   (nodes - prev_point));
    }
    prev_mean = response.stats.mean();
    prev_point = nodes;
  }
  table.Print(std::cout);

  if (crossover > 0) {
    std::printf("\nEquivalent performance at ~%d HOG nodes "
                "(paper: [99,100]).\n", crossover);
  } else {
    std::printf("\nNo crossover detected in the sampled range.\n");
  }
  std::printf("Expected shape: response decreases with nodes but not "
              "monotonically (churn), with diminishing returns toward 1101 "
              "nodes (§IV.C).\n");
  return 0;
}
