// Reproduces §IV.D.2 — "Disk Overflow": replication factor 10 plus slow
// WAN reduces make intermediate map output pile up on worker disks (Hadoop
// deletes it only when the whole job finishes), until map attempts fail
// with out-of-disk errors reported to the jobtracker.
//
// Small scratch disks make the effect visible at bench scale; the
// comparison shows the same workload on roomy disks stays clean.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/util/table.h"

using namespace hogsim;

namespace {

struct Outcome {
  double response_s = 0;
  int failed_jobs = 0;
  int succeeded = 0;
  std::uint64_t attempts = 0;
  double peak_disk_util = 0;
};

Outcome Run(Bytes node_disk) {
  hog::HogConfig config;
  for (auto& site : config.sites) site.node_disk = node_disk;
  config.sites = hog::DefaultOsgSites();
  for (auto& site : config.sites) {
    site.node_disk = node_disk;
    site.node_mtbf_s = 1e9;  // isolate the disk effect from churn
    site.burst_interval_s = 0;
  }
  hog::HogCluster cluster(bench::kSeeds[0], config);
  cluster.RequestNodes(40);
  if (!cluster.WaitForNodes(40, bench::kSpinUpDeadline)) return {};

  Rng rng(bench::kSeeds[0]);
  workload::WorkloadConfig wl;
  auto schedule = workload::GenerateFacebookSchedule(rng, wl);
  // Keep input volume modest so the *intermediate* data is what overflows.
  schedule.erase(std::remove_if(schedule.begin(), schedule.end(),
                                [](const auto& j) { return j.bin > 5; }),
                 schedule.end());
  workload::WorkloadRunner runner(cluster.sim(), cluster.jobtracker(),
                                  cluster.namenode(), wl);
  runner.PrepareInputs(schedule);
  runner.SubmitAll(schedule);

  // Track peak disk utilization across workers while running.
  Outcome outcome;
  while (!runner.Done() &&
         cluster.sim().now() < bench::kRunDeadline) {
    cluster.sim().RunUntil(cluster.sim().now() + 30 * kSecond);
    for (auto id : cluster.grid().RunningNodeIds()) {
      const auto& disk = cluster.grid().node(id)->disk();
      outcome.peak_disk_util = std::max(
          outcome.peak_disk_util, static_cast<double>(disk.used()) /
                                      static_cast<double>(disk.capacity()));
    }
  }
  const auto result = runner.Collect();
  outcome.response_s = result.response_time_s;
  outcome.failed_jobs = result.failed;
  outcome.succeeded = result.succeeded;
  outcome.attempts = cluster.jobtracker().attempts_launched();
  return outcome;
}

}  // namespace

int main() {
  std::printf("§IV.D.2: disk overflow from retained intermediate data\n");
  std::printf("(replication 10, 40 nodes, bins 1-5; Hadoop keeps map output "
              "until the job completes)\n\n");
  struct Case {
    const char* name;
    Bytes disk;
  };
  const Case cases[] = {
      {"tight scratch disks (8 GiB)", 8 * kGiB},
      {"roomy scratch disks (100 GiB)", 100 * kGiB},
  };
  TextTable table({"configuration", "response (s)", "jobs ok", "jobs failed",
                   "attempts", "peak disk util"});
  std::vector<Outcome> outcomes;
  for (const Case& c : cases) {
    const Outcome o = Run(c.disk);
    outcomes.push_back(o);
    table.AddRow({c.name, FormatDouble(o.response_s, 0),
                  std::to_string(o.succeeded), std::to_string(o.failed_jobs),
                  std::to_string(o.attempts),
                  FormatDouble(o.peak_disk_util * 100, 1) + "%"});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: tight disks run at ~100%% utilization and report "
      "out-of-disk task failures (extra attempts, possibly failed jobs), "
      "exactly the worker-out-of-disk errors the paper saw; roomy disks "
      "stay clean.\n");
  std::printf("Overflow visible on tight disks: %s\n",
              (outcomes[0].peak_disk_util > 0.97 &&
               (outcomes[0].failed_jobs > outcomes[1].failed_jobs ||
                outcomes[0].attempts > outcomes[1].attempts))
                  ? "YES"
                  : "NO");
  return 0;
}
