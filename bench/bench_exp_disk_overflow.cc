// Reproduces §IV.D.2 — "Disk Overflow": replication factor 10 plus slow
// WAN reduces make intermediate map output pile up on worker disks (Hadoop
// deletes it only when the whole job finishes), until map attempts fail
// with out-of-disk errors reported to the jobtracker.
//
// Small scratch disks make the effect visible at bench scale; the
// comparison shows the same workload on roomy disks stays clean. Each disk
// size is a sweep config; results aggregate across seeds.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "src/exp/paper_runs.h"
#include "src/exp/bench_main.h"
#include "src/util/table.h"

using namespace hogsim;

namespace {

struct Case {
  const char* name;
  Bytes disk;
};

constexpr Case kCases[] = {
    {"tight scratch disks (8 GiB)", 8 * kGiB},
    {"roomy scratch disks (100 GiB)", 100 * kGiB},
};

exp::Metrics Run(const Case& c, std::uint64_t seed, bool fast,
                 const fault::Scenario& scenario) {
  hog::HogConfig config;
  config.sites = hog::DefaultOsgSites();
  for (auto& site : config.sites) {
    site.node_disk = c.disk;
    site.node_mtbf_s = 1e9;  // isolate the disk effect from churn
    site.burst_interval_s = 0;
  }
  hog::HogCluster cluster(seed, config);
  cluster.RequestNodes(40);
  if (!cluster.WaitForNodes(40, exp::kSpinUpDeadline)) {
    return {{"response_s", 0.0},
            {"jobs_ok", 0.0},
            {"jobs_failed", 0.0},
            {"attempts", 0.0},
            {"peak_disk_util", 0.0}};
  }

  Rng rng(seed);
  workload::WorkloadConfig wl;
  auto schedule = workload::GenerateFacebookSchedule(rng, wl);
  // Keep input volume modest so the *intermediate* data is what overflows.
  schedule.erase(std::remove_if(schedule.begin(), schedule.end(),
                                [](const auto& j) { return j.bin > 5; }),
                 schedule.end());
  if (fast) schedule.resize(schedule.size() / 2);
  workload::WorkloadRunner runner(cluster.sim(), cluster.jobtracker(),
                                  cluster.namenode(), wl);
  runner.PrepareInputs(schedule);
  const auto chaos = exp::ArmScenario(cluster, scenario);
  runner.SubmitAll(schedule);

  // Track peak disk utilization across workers while running.
  double peak_disk_util = 0;
  while (!runner.Done() && cluster.sim().now() < exp::kRunDeadline) {
    cluster.sim().RunUntil(cluster.sim().now() + 30 * kSecond);
    for (auto id : cluster.grid().RunningNodeIds()) {
      const auto& disk = cluster.grid().node(id)->disk();
      peak_disk_util =
          std::max(peak_disk_util, static_cast<double>(disk.used()) /
                                       static_cast<double>(disk.capacity()));
    }
  }
  const auto result = runner.Collect();
  return {{"response_s", result.response_time_s},
          {"jobs_ok", static_cast<double>(result.succeeded)},
          {"jobs_failed", static_cast<double>(result.failed)},
          {"attempts",
           static_cast<double>(cluster.jobtracker().attempts_launched())},
          {"peak_disk_util", peak_disk_util}};
}

}  // namespace

int main(int argc, char** argv) {
  exp::BenchOptions opts = exp::ParseBenchOptions(argc, argv);
  if (opts.fast) opts.seeds.resize(1);
  const fault::Scenario scenario = exp::LoadBenchScenario(opts);

  std::printf("§IV.D.2: disk overflow from retained intermediate data\n");
  std::printf("(replication 10, 40 nodes, bins 1-5; Hadoop keeps map output "
              "until the job completes; %zu seed(s))\n\n", opts.seeds.size());
  exp::SweepSpec spec;
  spec.name = "exp_disk_overflow";
  spec.configs = std::size(kCases);
  spec.config_labels = {"disk8gib", "disk100gib"};
  const bool fast = opts.fast;
  const exp::SweepResult sweep = exp::RunBenchSweep(
      opts, spec, [fast, &scenario](std::size_t config, std::uint64_t seed) {
        return Run(kCases[config], seed, fast, scenario);
      });

  TextTable table({"configuration", "response (s)", "jobs ok", "jobs failed",
                   "attempts", "peak disk util"});
  for (std::size_t c = 0; c < spec.configs; ++c) {
    const auto& m = sweep.summaries[c];
    table.AddRow({kCases[c].name, FormatDouble(m[0].stats.mean(), 0),
                  FormatDouble(m[1].stats.mean(), 1),
                  FormatDouble(m[2].stats.mean(), 1),
                  FormatDouble(m[3].stats.mean(), 0),
                  FormatDouble(m[4].stats.mean() * 100, 1) + "%"});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: tight disks run at ~100%% utilization and report "
      "out-of-disk task failures (extra attempts, possibly failed jobs), "
      "exactly the worker-out-of-disk errors the paper saw; roomy disks "
      "stay clean.\n");
  const auto mean = [&](std::size_t c, std::size_t metric) {
    return sweep.summaries[c][metric].stats.mean();
  };
  std::printf("Overflow visible on tight disks: %s\n",
              (mean(0, 4) > 0.97 &&
               (mean(0, 2) > mean(1, 2) || mean(0, 3) > mean(1, 3)))
                  ? "YES"
                  : "NO");
  return 0;
}
