// Scale grid: nodes x jobs sweeps over the HOG cluster, up to 10k
// glideins across 100 sites — the asymptotics regression gate.
//
// The incremental max-min solver, the deadline-heap expiry monitors, and
// the flat block/node arenas all claim O(changed state) costs; this bench
// runs grids large enough that an accidental O(cluster) scan shows up in
// wall-clock and events/sec. Every config arms the fail-fast invariant
// auditor, so a 10k-node run finishing at all is also a correctness
// statement. BENCH_scale.json commits the trajectory for compare_bench.
//
// Metric split (see src/exp/scale_run.h): deterministic rows
// (executed_events, jobs_succeeded, audit_violations, ...) are byte-stable
// across machines and thread counts; host rows (wall_s, peak_rss_mib,
// events_per_sec) describe the machine the baseline was generated on.
// --no-host-metrics drops the host rows, which makes the output
// byte-comparable across machines and --threads values — that is what the
// check.sh gate and the determinism test run. compare_bench treats the
// baseline's host rows as "missing in candidate", not regressions.
//
//   bench_scale --fast --no-host-metrics   # CI gate grid (small configs)
//   bench_scale                            # full grid incl. 10k x 100
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/exp/bench_main.h"
#include "src/exp/scale_run.h"

using namespace hogsim;

namespace {

struct GridPoint {
  const char* label;
  exp::ScaleConfig config;
};

/// The full grid; --fast runs the first kFastConfigs entries. Fast
/// configs keep the full-grid labels and parameters, so a fast candidate
/// compares row-for-row against the committed full baseline.
constexpr int kFastConfigs = 3;

std::vector<GridPoint> Grid() {
  auto point = [](const char* label, int nodes, int sites, int jobs) {
    GridPoint p;
    p.label = label;
    p.config.nodes = nodes;
    p.config.sites = sites;
    p.config.jobs = jobs;
    return p;
  };
  return {
      // CI-sized points (also the --fast grid): nodes and jobs vary
      // independently so each axis has a gate.
      point("500n-5s-30j", 500, 5, 30),
      point("500n-5s-120j", 500, 5, 120),
      point("2000n-20s-30j", 2000, 20, 30),
      // Full-grid points: past the paper's 1101-node experiment, up to
      // the 10k-glidein / 100-site headline run.
      point("2000n-20s-120j", 2000, 20, 120),
      point("10000n-100s-60j", 10000, 100, 60),
  };
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the bench-local flag before the shared parser sees argv.
  bool host_metrics = true;
  std::vector<char*> args;
  args.reserve(argc);
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-host-metrics") == 0) {
      host_metrics = false;
      continue;
    }
    args.push_back(argv[i]);
  }
  exp::BenchOptions opts = exp::ParseBenchOptions(
      static_cast<int>(args.size()), args.data());

  std::vector<GridPoint> grid = Grid();
  if (opts.fast) grid.resize(kFastConfigs);

  std::vector<std::string> labels;
  for (const GridPoint& p : grid) labels.push_back(p.label);

  std::printf("Scale grid: %zu config(s) x %zu seed(s), auditor armed "
              "(fail-fast)%s\n\n",
              grid.size(), opts.seeds.size(),
              host_metrics ? "" : ", host metrics off");

  exp::SweepSpec spec;
  spec.name = "scale";
  spec.configs = grid.size();
  spec.config_labels = labels;
  const exp::SweepResult sweep = exp::RunBenchSweep(
      opts, spec,
      [&grid, host_metrics](std::size_t config,
                            std::uint64_t seed) -> exp::Metrics {
        exp::ScaleConfig scale = grid[config].config;
        scale.audit = true;
        scale.host_metrics = host_metrics;
        return exp::RunScaleWorkload(scale, seed);
      });

  // Gate: every run must reach its node target, finish every job, and
  // audit clean. Metric order matches RunScaleWorkload's emission order.
  int bad_runs = 0;
  for (const exp::RunRecord& run : sweep.runs) {
    const double reached = run.metrics[0].second;
    const double succeeded = run.metrics[1].second;
    const double failed = run.metrics[2].second;
    const double violations = run.metrics[7].second;
    const double jobs = grid[run.config_index].config.jobs;
    if (reached == 1.0 && failed == 0 && succeeded == jobs &&
        violations == 0) {
      continue;
    }
    ++bad_runs;
    std::printf("SCALE FAIL: %s seed %llu: reached=%g succeeded=%g/%g "
                "failed=%g violations=%g\n",
                labels[run.config_index].c_str(),
                static_cast<unsigned long long>(run.seed), reached,
                succeeded, jobs, failed, violations);
  }
  if (bad_runs > 0) {
    std::printf("\nscale grid FAILED: %d of %zu runs broke the scale "
                "contract\n", bad_runs, sweep.runs.size());
    return 1;
  }
  std::printf("\nscale grid PASSED: %zu runs, all node targets reached, "
              "all jobs succeeded, audits clean\n", sweep.runs.size());
  return 0;
}
