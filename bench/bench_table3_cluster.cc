// Reproduces Table III — the dedicated MapReduce cluster — and measures
// the baseline it anchors: the Facebook workload's response time on that
// cluster (the dashed line of Fig. 4).
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/util/table.h"

using namespace hogsim;

int main() {
  std::printf("Table III: dedicated MapReduce cluster configuration\n\n");
  TextTable table({"Nodes", "Quantity", "Configuration"});
  table.AddRow({"Master node", "1", "2x 2.2GHz CPUs, 1 Gbps Ethernet"});
  table.AddRow({"Slave nodes-I", "20",
                "2x dual-core 2.2GHz, 1 Gbps, 4 map + 1 reduce slots"});
  table.AddRow({"Slave nodes-II", "10",
                "2x single-core 2.2GHz, 1 Gbps, 2 map + 1 reduce slots"});
  table.Print(std::cout);

  baseline::DedicatedCluster probe(1);
  std::printf("\nInstantiated cluster: %d slaves, %d map slots, %d reduce "
              "slots (paper: 100 cores)\n",
              probe.slave_count(), probe.total_map_slots(),
              probe.total_reduce_slots());

  std::printf("\nBaseline measurement (Facebook workload, 3 runs):\n\n");
  TextTable runs({"seed", "response time (s)", "jobs ok", "jobs failed"});
  RunningStats stats;
  const int n_runs = bench::FastMode() ? 1 : 3;
  for (int i = 0; i < n_runs; ++i) {
    const auto result = bench::RunClusterWorkload(bench::kSeeds[i]);
    stats.Add(result.response_time_s);
    runs.AddRow({std::to_string(bench::kSeeds[i]),
                 FormatDouble(result.response_time_s, 0),
                 std::to_string(result.succeeded),
                 std::to_string(result.failed)});
  }
  runs.Print(std::cout);
  std::printf("\nCluster baseline: mean %.0f s (the Fig. 4 dashed line)\n",
              stats.mean());
  return 0;
}
