// Reproduces Table III — the dedicated MapReduce cluster — and measures
// the baseline it anchors: the Facebook workload's response time on that
// cluster (the dashed line of Fig. 4), as a multi-seed sweep with CI.
#include <cstdio>
#include <iostream>

#include "src/baseline/dedicated_cluster.h"
#include "src/exp/paper_runs.h"
#include "src/exp/bench_main.h"
#include "src/util/table.h"

using namespace hogsim;

int main(int argc, char** argv) {
  exp::BenchOptions opts = exp::ParseBenchOptions(argc, argv);
  if (opts.fast) opts.seeds.resize(1);

  std::printf("Table III: dedicated MapReduce cluster configuration\n\n");
  TextTable table({"Nodes", "Quantity", "Configuration"});
  table.AddRow({"Master node", "1", "2x 2.2GHz CPUs, 1 Gbps Ethernet"});
  table.AddRow({"Slave nodes-I", "20",
                "2x dual-core 2.2GHz, 1 Gbps, 4 map + 1 reduce slots"});
  table.AddRow({"Slave nodes-II", "10",
                "2x single-core 2.2GHz, 1 Gbps, 2 map + 1 reduce slots"});
  table.Print(std::cout);

  baseline::DedicatedCluster probe(1);
  std::printf("\nInstantiated cluster: %d slaves, %d map slots, %d reduce "
              "slots (paper: 100 cores)\n",
              probe.slave_count(), probe.total_map_slots(),
              probe.total_reduce_slots());

  std::printf("\nBaseline measurement (Facebook workload, %zu run(s)):\n\n",
              opts.seeds.size());
  exp::SweepSpec spec;
  spec.name = "table3";
  spec.configs = 1;
  spec.config_labels = {"cluster100"};
  const exp::SweepResult sweep = exp::RunBenchSweep(
      opts, spec, [](std::size_t, std::uint64_t seed) -> exp::Metrics {
        const auto result = exp::RunClusterWorkload(seed);
        return {{"response_s", result.response_time_s},
                {"jobs_ok", static_cast<double>(result.succeeded)},
                {"jobs_failed", static_cast<double>(result.failed)}};
      });

  TextTable runs({"seed", "response time (s)", "jobs ok", "jobs failed"});
  for (std::size_t s = 0; s < spec.seeds.size(); ++s) {
    const exp::RunRecord& run = sweep.run(0, s, spec.seeds.size());
    runs.AddRow({std::to_string(run.seed),
                 FormatDouble(run.metrics[0].second, 0),
                 FormatDouble(run.metrics[1].second, 0),
                 FormatDouble(run.metrics[2].second, 0)});
  }
  runs.Print(std::cout);
  const exp::MetricSummary& response = sweep.summaries[0][0];
  std::printf("\nCluster baseline: mean %.0f s +-%.0f (95%% CI; the Fig. 4 "
              "dashed line)\n",
              response.stats.mean(), response.ci95_halfwidth);
  return 0;
}
