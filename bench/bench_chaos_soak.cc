// Chaos soak: random scenario x seed matrices with the invariant auditor
// armed — the acceptance harness for the self-healing stack.
//
// Each config of the sweep is one seeded fault::RandomScenario (survivable
// palette: partial preemptions, zombies, freezes, partitions, bounded
// master blackouts, plus the gray faults — slow nodes, delayed
// heartbeats, disk stalls); each run replays the Facebook workload on a
// 55-node
// HOG deployment under that scenario with a check::Auditor ticking, then
// keeps the cluster alive until the under-replication queue drains. The
// soak PASSES only if, across every (scenario, seed) run:
//
//   - the auditor found zero cross-layer invariant violations,
//   - no committed output block of a succeeded job was lost,
//   - every job reached a terminal state (workload completed).
//
// Any breach prints the offending runs and exits 1. BENCH_soak.json holds
// the recovery metrics (time-to-full-replication, jobs survived, violation
// counts) for compare_bench gating.
//
//   bench_chaos_soak --fast            # 3 scenarios x 1 seed smoke
//   bench_chaos_soak                   # 25 scenarios x DefaultSeeds
//   bench_chaos_soak --audit           # violations fail fast mid-run
#include <cstdio>
#include <string>
#include <vector>

#include "src/exp/bench_main.h"
#include "src/exp/paper_runs.h"
#include "src/fault/random_scenario.h"

using namespace hogsim;

int main(int argc, char** argv) {
  exp::BenchOptions opts = exp::ParseBenchOptions(argc, argv);
  const std::size_t scenario_count = opts.fast ? 3 : 25;
  if (opts.fast) opts.seeds.resize(1);

  // Scenario seeds are fixed (not tied to sweep seeds): scenario k is the
  // same chaos schedule on every machine and under --seeds overrides.
  // The gray palette rides along (slow nodes, delayed heartbeats, disk
  // stalls): the self-healing contract must hold when faults degrade
  // nodes instead of killing them.
  fault::RandomScenarioOptions chaos_opts;
  chaos_opts.gray = true;
  std::vector<fault::Scenario> scenarios;
  std::vector<std::string> labels;
  for (std::size_t k = 0; k < scenario_count; ++k) {
    scenarios.push_back(fault::RandomScenario(1000 + k, chaos_opts));
    labels.push_back("chaos" + std::to_string(k));
  }

  std::printf("Chaos soak: %zu random scenario(s) x %zu seed(s), auditor "
              "armed%s\n\n",
              scenario_count, opts.seeds.size(),
              opts.audit ? " (fail-fast)" : "");

  exp::SweepSpec spec;
  spec.name = "soak";
  spec.configs = scenario_count;
  spec.config_labels = labels;
  const bool fail_fast = opts.audit;
  const exp::SweepResult sweep = exp::RunBenchSweep(
      opts, spec,
      [&scenarios, fail_fast, repl_target = opts.repl_target,
       topology = opts.topology](
          std::size_t config, std::uint64_t seed) -> exp::Metrics {
        exp::HogRunOptions ropts;
        ropts.audit = true;
        ropts.audit_fail_fast = fail_fast;
        ropts.drain_deadline = 2 * kHour;
        ropts.repl_target = repl_target;
        ropts.topology = topology;
        const auto result =
            exp::RunHogWorkload(55, seed, {}, &scenarios[config], ropts);
        const int jobs =
            result.workload.succeeded + result.workload.failed;
        return {{"violations",
                 static_cast<double>(result.audit_violations)},
                {"outputs_lost", static_cast<double>(result.outputs_lost)},
                {"all_terminated", result.workload.completed ? 1.0 : 0.0},
                {"jobs_survived",
                 static_cast<double>(result.workload.succeeded)},
                {"jobs_failed", static_cast<double>(result.workload.failed)},
                {"jobs_terminated", static_cast<double>(jobs)},
                {"time_to_full_repl_s", result.time_to_full_replication_s},
                {"fully_replicated", result.fully_replicated ? 1.0 : 0.0},
                {"response_s", result.workload.response_time_s},
                {"faults_injected",
                 static_cast<double>(result.faults_injected)}};
      });

  // The soak gate: every run must be violation-free, loss-free, and fully
  // terminated. Metric order matches the list returned above.
  int bad_runs = 0;
  for (const exp::RunRecord& run : sweep.runs) {
    const double violations = run.metrics[0].second;
    const double outputs_lost = run.metrics[1].second;
    const double all_terminated = run.metrics[2].second;
    if (violations == 0 && outputs_lost == 0 && all_terminated == 1.0) {
      continue;
    }
    ++bad_runs;
    std::printf("SOAK FAIL: %s seed %llu: violations=%g outputs_lost=%g "
                "all_terminated=%g\n",
                labels[run.config_index].c_str(),
                static_cast<unsigned long long>(run.seed), violations,
                outputs_lost, all_terminated);
  }
  if (bad_runs > 0) {
    std::printf("\nchaos soak FAILED: %d of %zu runs breached the "
                "self-healing contract\n", bad_runs, sweep.runs.size());
    return 1;
  }
  std::printf("\nchaos soak PASSED: %zu runs, zero invariant violations, "
              "zero lost outputs, all jobs terminated\n",
              sweep.runs.size());
  return 0;
}
