// Reproduces Table II — "Truncated workload for this paper": map and
// (paper-added) reduce task counts for bins 1-6, with the non-decreasing
// reduce rule — and sweeps the generated schedules' aggregate task totals
// across seeds (they must be seed-invariant: the bin mix is exact).
#include <cstdio>
#include <iostream>

#include "src/exp/bench_main.h"
#include "src/util/table.h"
#include "src/workload/facebook.h"

using namespace hogsim;

int main(int argc, char** argv) {
  const exp::BenchOptions opts = exp::ParseBenchOptions(argc, argv);

  std::printf("Table II: truncated workload (paper, verbatim)\n\n");
  TextTable table({"Bin", "Map Tasks", "Reduce Tasks"});
  for (const auto& bin : workload::FacebookTable2()) {
    table.AddRow({std::to_string(bin.bin), std::to_string(bin.map_tasks),
                  std::to_string(bin.reduce_tasks)});
  }
  table.Print(std::cout);

  exp::SweepSpec spec;
  spec.name = "table2";
  spec.configs = 1;
  spec.config_labels = {"schedule_totals"};
  const exp::SweepResult sweep = exp::RunBenchSweep(
      opts, spec, [](std::size_t, std::uint64_t seed) -> exp::Metrics {
        Rng rng(seed);
        workload::WorkloadConfig config;
        const auto schedule = workload::GenerateFacebookSchedule(rng, config);
        long long maps = 0, reduces = 0, input = 0;
        for (const auto& job : schedule) {
          maps += job.maps;
          reduces += job.reduces;
          input += static_cast<long long>(job.maps) * config.block_size;
        }
        return {{"map_tasks", static_cast<double>(maps)},
                {"reduce_tasks", static_cast<double>(reduces)},
                {"input_gib", static_cast<double>(input) / kGiB}};
      });

  const auto& totals = sweep.summaries[0];
  std::printf("\nSchedule totals (every seed): %.0f map tasks, %.0f reduce "
              "tasks, %.1f GiB of input data (64 MiB per map, §II.A)\n",
              totals[0].stats.mean(), totals[1].stats.mean(),
              totals[2].stats.mean());
  std::printf("Totals seed-invariant (stddev 0): %s\n",
              (totals[0].stats.stddev() == 0 &&
               totals[1].stats.stddev() == 0)
                  ? "YES"
                  : "NO");
  return 0;
}
