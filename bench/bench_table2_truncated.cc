// Reproduces Table II — "Truncated workload for this paper": map and
// (paper-added) reduce task counts for bins 1-6, with the non-decreasing
// reduce rule — and reports the aggregate task totals the schedule yields.
#include <cstdio>
#include <iostream>

#include "src/util/table.h"
#include "src/workload/facebook.h"

using namespace hogsim;

int main() {
  std::printf("Table II: truncated workload (paper, verbatim)\n\n");
  TextTable table({"Bin", "Map Tasks", "Reduce Tasks"});
  for (const auto& bin : workload::FacebookTable2()) {
    table.AddRow({std::to_string(bin.bin), std::to_string(bin.map_tasks),
                  std::to_string(bin.reduce_tasks)});
  }
  table.Print(std::cout);

  Rng rng(11);
  workload::WorkloadConfig config;
  const auto schedule = workload::GenerateFacebookSchedule(rng, config);
  long long maps = 0, reduces = 0, input = 0;
  for (const auto& job : schedule) {
    maps += job.maps;
    reduces += job.reduces;
    input += static_cast<long long>(job.maps) * config.block_size;
  }
  std::printf("\nSchedule totals: %lld map tasks, %lld reduce tasks, %s of "
              "input data (64 MiB per map, §II.A)\n",
              maps, reduces, FormatBytes(input).c_str());
  return 0;
}
