// Ablation for §VI (future work, implemented here as an extension):
// running a configurable number of copies of every task and taking the
// fastest. The paper proposes this to mask node loss; the cost is extra
// slot consumption.
#include <cstdio>
#include <iostream>

#include <algorithm>

#include "bench/bench_util.h"
#include "src/util/table.h"

using namespace hogsim;

namespace {

struct Outcome {
  double response_s = 0;
  double mean_job_response_s = 0;  // per-job latency: what copies mask
  std::uint64_t attempts = 0;
  int failed_jobs = 0;
};

Outcome Run(int copies, int nodes) {
  hog::HogConfig config;
  config.task_copies = copies;
  config.sites = hog::DefaultOsgSites();
  for (auto& site : config.sites) {
    site.node_mtbf_s = 3600.0;  // volatile grid: where §VI should help
    site.burst_interval_s = 900.0;
    site.burst_fraction = 0.15;
  }
  hog::HogCluster cluster(bench::kSeeds[1], config);
  // Over-request: under churn, running nodes settle below the lease
  // target (replacements sit in remote batch queues), so keep extra
  // pressure — standard GlideinWMS practice.
  cluster.RequestNodes(nodes * 115 / 100);
  if (!cluster.WaitForNodes(nodes, bench::kSpinUpDeadline)) return {};
  Rng rng(bench::kSeeds[1]);
  workload::WorkloadConfig wl;
  auto schedule = workload::GenerateFacebookSchedule(rng, wl);
  // Bins 1-4 (76 jobs): N-copy reduces multiply WAN shuffle N-fold, so the
  // heaviest bins would congest the benches' wall clock without changing
  // the conclusion.
  schedule.erase(std::remove_if(schedule.begin(), schedule.end(),
                                [](const auto& j) { return j.bin > 4; }),
                 schedule.end());
  if (bench::FastMode()) schedule.resize(schedule.size() / 2);
  workload::WorkloadRunner runner(cluster.sim(), cluster.jobtracker(),
                                  cluster.namenode(), wl);
  runner.PrepareInputs(schedule);
  runner.SubmitAll(schedule);
  // Bounded deadline: a blacklist-wedged job should cap the run, not
  // stretch it to the global limit.
  const auto result = runner.Run(cluster.sim().now() + 4 * kHour);
  Outcome outcome;
  outcome.response_s = result.response_time_s;
  RunningStats per_job;
  for (double r : result.job_response_s) per_job.Add(r);
  outcome.mean_job_response_s = per_job.mean();
  outcome.attempts = cluster.jobtracker().attempts_launched();
  outcome.failed_jobs = result.failed;
  return outcome;
}

}  // namespace

int main() {
  std::printf("Ablation: multi-copy task execution on a volatile grid "
              "(§VI extension; N copies, fastest wins)\n");
  std::printf("(240 nodes: ample spare slots for the extra copies)\n\n");
  TextTable table({"copies", "response (s)", "mean job latency (s)",
                   "attempts launched", "failed jobs"});
  std::vector<Outcome> outcomes;
  for (int copies : {1, 2, 3}) {
    const Outcome o = Run(copies, 240);
    outcomes.push_back(o);
    table.AddRow({std::to_string(copies), FormatDouble(o.response_s, 0),
                  FormatDouble(o.mean_job_response_s, 0),
                  std::to_string(o.attempts),
                  std::to_string(o.failed_jobs)});
  }
  table.Print(std::cout);
  std::printf(
      "\nThe paper hypothesizes (§VI) that redundant copies let HOG finish "
      "faster when nodes go missing. The measured trade-off: copies mask "
      "preemption-induced re-execution, but they also multiply slot, "
      "shuffle, and WAN demand — so the benefit only materializes while "
      "the extra copies stay effectively free. Attempts grow ~linearly "
      "with N either way.\n");
  const bool second_copy_helps =
      outcomes[1].response_s < outcomes[0].response_s;
  std::printf("Measured: second copy %s response (%.0f -> %.0f s); third "
              "copy adds %.0f s.\n",
              second_copy_helps ? "improves" : "does not improve",
              outcomes[0].response_s, outcomes[1].response_s,
              outcomes[2].response_s - outcomes[1].response_s);
  return 0;
}
