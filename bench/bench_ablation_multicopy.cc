// Ablation for §VI (future work, implemented here as an extension):
// running a configurable number of copies of every task and taking the
// fastest. The paper proposes this to mask node loss; the cost is extra
// slot consumption. Swept across seeds; each copy count is a config.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "src/exp/paper_runs.h"
#include "src/exp/bench_main.h"
#include "src/util/table.h"

using namespace hogsim;

namespace {

constexpr int kNodes = 240;

exp::Metrics Run(int copies, std::uint64_t seed, bool fast,
                 const fault::Scenario& scenario) {
  hog::HogConfig config;
  config.task_copies = copies;
  config.sites = hog::DefaultOsgSites();
  for (auto& site : config.sites) {
    site.node_mtbf_s = 3600.0;  // volatile grid: where §VI should help
    site.burst_interval_s = 900.0;
    site.burst_fraction = 0.15;
  }
  hog::HogCluster cluster(seed, config);
  // Over-request: under churn, running nodes settle below the lease
  // target (replacements sit in remote batch queues), so keep extra
  // pressure — standard GlideinWMS practice.
  cluster.RequestNodes(kNodes * 115 / 100);
  if (!cluster.WaitForNodes(kNodes, exp::kSpinUpDeadline)) {
    return {{"response_s", 0.0},
            {"mean_job_latency_s", 0.0},
            {"attempts", 0.0},
            {"failed_jobs", 0.0}};
  }
  Rng rng(seed);
  workload::WorkloadConfig wl;
  auto schedule = workload::GenerateFacebookSchedule(rng, wl);
  // Bins 1-4 (76 jobs): N-copy reduces multiply WAN shuffle N-fold, so the
  // heaviest bins would congest the benches' wall clock without changing
  // the conclusion.
  schedule.erase(std::remove_if(schedule.begin(), schedule.end(),
                                [](const auto& j) { return j.bin > 4; }),
                 schedule.end());
  if (fast) schedule.resize(schedule.size() / 2);
  workload::WorkloadRunner runner(cluster.sim(), cluster.jobtracker(),
                                  cluster.namenode(), wl);
  runner.PrepareInputs(schedule);
  const auto chaos = exp::ArmScenario(cluster, scenario);
  runner.SubmitAll(schedule);
  // Bounded deadline: a blacklist-wedged job should cap the run, not
  // stretch it to the global limit.
  const auto result = runner.Run(cluster.sim().now() + 4 * kHour);
  RunningStats per_job;
  for (double r : result.job_response_s) per_job.Add(r);
  return {{"response_s", result.response_time_s},
          {"mean_job_latency_s", per_job.mean()},
          {"attempts",
           static_cast<double>(cluster.jobtracker().attempts_launched())},
          {"failed_jobs", static_cast<double>(result.failed)}};
}

}  // namespace

int main(int argc, char** argv) {
  exp::BenchOptions opts = exp::ParseBenchOptions(argc, argv);
  if (opts.fast) opts.seeds.resize(1);
  const fault::Scenario scenario = exp::LoadBenchScenario(opts);

  std::printf("Ablation: multi-copy task execution on a volatile grid "
              "(§VI extension; N copies, fastest wins; %zu seed(s))\n",
              opts.seeds.size());
  std::printf("(240 nodes: ample spare slots for the extra copies)\n\n");
  exp::SweepSpec spec;
  spec.name = "ablation_multicopy";
  spec.configs = 3;
  spec.config_labels = {"copies1", "copies2", "copies3"};
  const bool fast = opts.fast;
  const exp::SweepResult sweep = exp::RunBenchSweep(
      opts, spec, [fast, &scenario](std::size_t config, std::uint64_t seed) {
        return Run(static_cast<int>(config) + 1, seed, fast, scenario);
      });

  TextTable table({"copies", "response (s)", "mean job latency (s)",
                   "attempts launched", "failed jobs"});
  for (std::size_t c = 0; c < spec.configs; ++c) {
    const auto& m = sweep.summaries[c];
    table.AddRow({std::to_string(c + 1), FormatDouble(m[0].stats.mean(), 0),
                  FormatDouble(m[1].stats.mean(), 0),
                  FormatDouble(m[2].stats.mean(), 0),
                  FormatDouble(m[3].stats.mean(), 1)});
  }
  table.Print(std::cout);
  std::printf(
      "\nThe paper hypothesizes (§VI) that redundant copies let HOG finish "
      "faster when nodes go missing. The measured trade-off: copies mask "
      "preemption-induced re-execution, but they also multiply slot, "
      "shuffle, and WAN demand — so the benefit only materializes while "
      "the extra copies stay effectively free. Attempts grow ~linearly "
      "with N either way.\n");
  const auto response = [&](std::size_t c) {
    return sweep.summaries[c][0].stats.mean();
  };
  const bool second_copy_helps = response(1) < response(0);
  std::printf("Measured: second copy %s response (%.0f -> %.0f s); third "
              "copy adds %.0f s.\n",
              second_copy_helps ? "improves" : "does not improve",
              response(0), response(1), response(2) - response(1));
  return 0;
}
