// Gray-failure bench: the detection-latency vs false-positive frontier of
// the failure-detector zoo, and the goodput value of node quarantine
// under a slow-node storm.
//
// Frontier rows: per jitter palette (max per-heartbeat delay J), a quiet
// cluster runs a 2 h steady window (every tracker declared lost is a
// false suspicion) and then loses one whole site cold (detect_all_s =
// time to declare every killed tracker). The fixed-deadline ladder
// (dl30 / dl90 / dl240) exposes its inherent trade — a deadline short
// enough to detect fast false-fires under jitter, one long enough to
// stay quiet under every palette is slow everywhere — while one
// phi-accrual config adapts its silence budget to the observed cadence:
// tight under the calm palette, wide (but still under the clean
// deadlines) under the noisy one. Gates, per palette:
//   * phi stays at zero false suspicions,
//   * no deadline point dominates phi, and
//   * phi strictly dominates at least one deadline point
//     (fp no worse, detect strictly faster).
//
// Storm rows: the same workload over a fixed slow-node storm (8 leases at
// 4x compute) with quarantine off vs on. Gate: mean goodput_per_slot_hour
// with quarantine strictly beats the run without it.
//
// All emitted metrics are deterministic per (config, seed); fast rows
// keep the full-run labels and parameters, so a --fast candidate
// compares row-for-row against the committed BENCH_gray.json.
//
//   bench_gray --fast     # CI gate (j45 palette + both storm rows)
//   bench_gray            # both palettes (the committed baseline)
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "src/exp/bench_main.h"
#include "src/exp/gray_run.h"

using namespace hogsim;

namespace {

struct GrayRow {
  std::string label;
  bool storm = false;
  exp::GrayDetectionConfig detection;
  exp::GrayStormConfig storm_config;
  SimDuration palette = 0;  // frontier rows: the jitter palette
  bool phi = false;         // frontier rows: the adaptive detector
};

std::vector<GrayRow> FrontierRows(SimDuration jitter, const char* tag) {
  struct Det {
    const char* name;
    const char* spec;
    SimDuration expiry;
    bool phi;
  };
  // The phi row's expiry is its bootstrap budget (and the floor/cap
  // anchor). threshold=48 (z ~= 14.5) keeps the learned budget above the
  // worst window-boundary silence the correlated jitter model produces
  // even when the variance EWMA dips through a quiet stretch, and
  // window=1024 makes those dips shallow; min_samples=48 spans several
  // 16-beat jitter windows so the adaptive handoff never happens on a
  // zero-variance intra-window history.
  const Det dets[] = {
      {"dl30", "deadline", 30 * kSecond, false},
      {"dl90", "deadline", 90 * kSecond, false},
      {"dl240", "deadline", 240 * kSecond, false},
      {"phi", "phi:threshold=48;min_samples=48;window=1024", 60 * kSecond,
       true},
  };
  std::vector<GrayRow> rows;
  for (const Det& det : dets) {
    GrayRow row;
    row.label = std::string(tag) + "-" + det.name;
    row.detection.detector = det.spec;
    row.detection.expiry = det.expiry;
    row.detection.jitter = jitter;
    row.palette = jitter;
    row.phi = det.phi;
    rows.push_back(std::move(row));
  }
  return rows;
}

/// The full grid; --fast keeps the j45 palette and both storm rows, with
/// identical per-row parameters, so fast rows match the committed
/// baseline byte-for-byte.
std::vector<GrayRow> Rows(bool fast) {
  std::vector<GrayRow> rows = FrontierRows(45 * kSecond, "j45");
  if (!fast) {
    std::vector<GrayRow> low = FrontierRows(6 * kSecond, "j6");
    rows.insert(rows.end(), low.begin(), low.end());
  }
  for (const bool quarantine : {false, true}) {
    GrayRow row;
    row.label = quarantine ? "storm-quarantine" : "storm-bare";
    row.storm = true;
    row.storm_config.quarantine = quarantine;
    rows.push_back(std::move(row));
  }
  return rows;
}

double MetricValue(const exp::Metrics& metrics, const char* name) {
  for (const auto& [key, value] : metrics) {
    if (key == name) return value;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  exp::BenchOptions opts = exp::ParseBenchOptions(argc, argv);
  const std::vector<GrayRow> rows = Rows(opts.fast);

  std::vector<std::string> labels;
  for (const GrayRow& row : rows) labels.push_back(row.label);

  std::printf("Gray-failure bench: %zu rows x %zu seed(s) (detector "
              "frontier + slow-node storm)\n\n",
              rows.size(), opts.seeds.size());

  exp::SweepSpec spec;
  spec.name = "gray";
  spec.configs = rows.size();
  spec.config_labels = labels;
  const exp::SweepResult sweep = exp::RunBenchSweep(
      opts, spec,
      [&rows](std::size_t config, std::uint64_t seed) -> exp::Metrics {
        const GrayRow& row = rows[config];
        if (row.storm) return exp::RunGrayStorm(row.storm_config, seed);
        return exp::RunGrayDetection(row.detection, seed);
      });

  // Aggregate per row (mean over seeds; the rows are deterministic per
  // seed, so the gates below are reproducible).
  struct Agg {
    double false_suspects = 0;
    double detect_all_s = 0;
    double goodput = 0;
    double violations = 0;
    double reached = 0;
    int runs = 0;
  };
  std::vector<Agg> agg(rows.size());
  for (const exp::RunRecord& run : sweep.runs) {
    Agg& a = agg[run.config_index];
    a.false_suspects += MetricValue(run.metrics, "false_suspects");
    a.detect_all_s += MetricValue(run.metrics, "detect_all_s");
    a.goodput += MetricValue(run.metrics, "goodput_per_slot_hour");
    a.violations += MetricValue(run.metrics, "audit_violations");
    a.reached += MetricValue(run.metrics, "reached_target");
    ++a.runs;
  }
  for (Agg& a : agg) {
    if (a.runs > 0) {
      a.false_suspects /= a.runs;
      a.detect_all_s /= a.runs;
      a.goodput /= a.runs;
    }
  }

  int failures = 0;
  // Every run must have reached its node target; a run that never spun up
  // measured nothing.
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (agg[i].reached != agg[i].runs) {
      std::printf("GRAY FAIL: %s: %g of %d runs reached the node target\n",
                  rows[i].label.c_str(), agg[i].reached, agg[i].runs);
      ++failures;
    }
  }

  // Frontier gates, per palette.
  std::map<SimDuration, std::vector<std::size_t>> palettes;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (!rows[i].storm) palettes[rows[i].palette].push_back(i);
  }
  for (const auto& [palette, members] : palettes) {
    const std::size_t* phi_row = nullptr;
    for (const std::size_t& i : members) {
      if (rows[i].phi) phi_row = &i;
    }
    if (phi_row == nullptr) continue;
    const Agg& phi = agg[*phi_row];
    std::printf("palette %llds: phi fp=%g detect=%gs\n",
                static_cast<long long>(palette / kSecond),
                phi.false_suspects, phi.detect_all_s);
    if (phi.false_suspects != 0) {
      std::printf("GRAY FAIL: %s: phi raised %g false suspicions\n",
                  rows[*phi_row].label.c_str(), phi.false_suspects);
      ++failures;
    }
    if (phi.detect_all_s <= 0) {
      std::printf("GRAY FAIL: %s: phi never declared the killed site\n",
                  rows[*phi_row].label.c_str());
      ++failures;
    }
    int dominated_by_phi = 0;
    for (std::size_t i : members) {
      if (rows[i].phi) continue;
      const Agg& dl = agg[i];
      std::printf("  %-10s fp=%g detect=%gs\n", rows[i].label.c_str(),
                  dl.false_suspects, dl.detect_all_s);
      // The adaptive point must strictly dominate the clean end of the
      // deadline frontier: any deadline as quiet as phi must be slower.
      if (dl.false_suspects <= phi.false_suspects &&
          dl.detect_all_s <= phi.detect_all_s) {
        std::printf("GRAY FAIL: %s dominates phi (fp %g <= %g, detect %gs "
                    "<= %gs)\n",
                    rows[i].label.c_str(), dl.false_suspects,
                    phi.false_suspects, dl.detect_all_s, phi.detect_all_s);
        ++failures;
      }
      if (phi.false_suspects <= dl.false_suspects &&
          phi.detect_all_s < dl.detect_all_s) {
        ++dominated_by_phi;
      }
    }
    if (dominated_by_phi == 0) {
      std::printf("GRAY FAIL: palette %llds: phi dominates no deadline "
                  "point\n",
                  static_cast<long long>(palette / kSecond));
      ++failures;
    }
  }

  // Storm gate: quarantine must buy goodput, and both runs audit clean.
  const std::size_t n = rows.size();
  const Agg& bare = agg[n - 2];
  const Agg& quarantined = agg[n - 1];
  std::printf("storm: goodput bare=%g quarantine=%g (violations %g / %g)\n",
              bare.goodput, quarantined.goodput, bare.violations,
              quarantined.violations);
  if (!(quarantined.goodput > bare.goodput)) {
    std::printf("GRAY FAIL: quarantine goodput %g did not beat bare %g\n",
                quarantined.goodput, bare.goodput);
    ++failures;
  }
  if (bare.violations != 0 || quarantined.violations != 0) {
    std::printf("GRAY FAIL: storm runs had audit violations (%g / %g)\n",
                bare.violations, quarantined.violations);
    ++failures;
  }

  if (failures > 0) {
    std::printf("\ngray bench FAILED: %d gate(s) broken\n", failures);
    return 1;
  }
  std::printf("\ngray bench PASSED: phi on the frontier in every palette, "
              "quarantine beat the storm\n");
  return 0;
}
