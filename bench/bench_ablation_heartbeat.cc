// Ablation for §III.B — failure-detection latency. HOG lowers the
// heartbeat recheck (namenode) and tracker expiry (jobtracker) from the
// traditional ~15 minutes to 30 seconds. Under grid churn, slow detection
// leaves dead nodes carrying phantom replicas and assigned-but-dead tasks
// for many minutes. Swept across seeds; each recheck setting is a config.
#include <cstdio>
#include <iostream>

#include "src/exp/paper_runs.h"
#include "src/exp/bench_main.h"
#include "src/util/table.h"

using namespace hogsim;

namespace {

struct Case {
  const char* name;
  SimDuration recheck;
};

constexpr Case kCases[] = {
    {"HOG (30 s)", 30 * kSecond},
    {"2 min", 2 * kMinute},
    {"traditional (15 min)", 15 * kMinute},
};

exp::Metrics Run(const Case& c, std::uint64_t seed, bool fast,
                 const fault::Scenario& scenario) {
  hog::HogConfig config;
  config.heartbeat_recheck = c.recheck;
  hog::HogCluster cluster(seed, config);
  cluster.RequestNodes(60);
  if (!cluster.WaitForNodes(60, exp::kSpinUpDeadline) &&
      !cluster.WaitForNodes(57, cluster.sim().now() + exp::kSpinUpDeadline)) {
    return {{"response_s", 0.0}, {"failed_jobs", 0.0}, {"maps_reexecuted", 0.0}};
  }
  Rng rng(seed);
  workload::WorkloadConfig wl;
  auto schedule = workload::GenerateFacebookSchedule(rng, wl);
  if (fast) schedule.resize(schedule.size() / 2);
  workload::WorkloadRunner runner(cluster.sim(), cluster.jobtracker(),
                                  cluster.namenode(), wl);
  runner.PrepareInputs(schedule);
  const auto chaos = exp::ArmScenario(cluster, scenario);
  runner.SubmitAll(schedule);
  const auto result = runner.Run(cluster.sim().now() + exp::kRunDeadline);
  return {{"response_s", result.response_time_s},
          {"failed_jobs", static_cast<double>(result.failed)},
          {"maps_reexecuted",
           static_cast<double>(cluster.jobtracker().maps_reexecuted())}};
}

}  // namespace

int main(int argc, char** argv) {
  exp::BenchOptions opts = exp::ParseBenchOptions(argc, argv);
  if (opts.fast) opts.seeds.resize(1);
  const fault::Scenario scenario = exp::LoadBenchScenario(opts);

  std::printf("Ablation: failure-detection timeout under grid churn "
              "(§III.B; paper lowers ~15 min -> 30 s; %zu seed(s))\n\n",
              opts.seeds.size());
  exp::SweepSpec spec;
  spec.name = "ablation_heartbeat";
  spec.configs = std::size(kCases);
  spec.config_labels = {"recheck_30s", "recheck_2min", "recheck_15min"};
  const bool fast = opts.fast;
  const exp::SweepResult sweep = exp::RunBenchSweep(
      opts, spec, [fast, &scenario](std::size_t config, std::uint64_t seed) {
        return Run(kCases[config], seed, fast, scenario);
      });

  TextTable table({"recheck", "response (s)", "ci95", "failed jobs",
                   "maps re-executed"});
  for (std::size_t c = 0; c < spec.configs; ++c) {
    const auto& m = sweep.summaries[c];
    table.AddRow({kCases[c].name, FormatDouble(m[0].stats.mean(), 0),
                  "+-" + FormatDouble(m[0].ci95_halfwidth, 0),
                  FormatDouble(m[1].stats.mean(), 1),
                  FormatDouble(m[2].stats.mean(), 0)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: with 15-minute detection, every preemption parks "
      "task attempts and replicas on a dead node for up to 15 minutes "
      "before recovery starts, stretching (or wedging) the workload; 30 s "
      "detection recovers almost immediately.\n");
  const auto response = [&](std::size_t c) {
    return sweep.summaries[c][0].stats.mean();
  };
  std::printf("30 s detection fastest: %s\n",
              (response(0) <= response(1) && response(0) <= response(2))
                  ? "YES"
                  : "NO");
  return 0;
}
