// Ablation for §III.B — failure-detection latency. HOG lowers the
// heartbeat recheck (namenode) and tracker expiry (jobtracker) from the
// traditional ~15 minutes to 30 seconds. Under grid churn, slow detection
// leaves dead nodes carrying phantom replicas and assigned-but-dead tasks
// for many minutes.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/util/table.h"

using namespace hogsim;

namespace {

struct Outcome {
  double response_s = 0;
  int failed_jobs = 0;
  std::uint64_t maps_reexecuted = 0;
};

Outcome Run(SimDuration recheck) {
  hog::HogConfig config;
  config.heartbeat_recheck = recheck;
  hog::HogCluster cluster(bench::kSeeds[0], config);
  cluster.RequestNodes(60);
  if (!cluster.WaitForNodes(60, bench::kSpinUpDeadline) &&
      !cluster.WaitForNodes(57, cluster.sim().now() + bench::kSpinUpDeadline)) {
    return {};
  }
  Rng rng(bench::kSeeds[0]);
  workload::WorkloadConfig wl;
  auto schedule = workload::GenerateFacebookSchedule(rng, wl);
  if (bench::FastMode()) schedule.resize(schedule.size() / 2);
  workload::WorkloadRunner runner(cluster.sim(), cluster.jobtracker(),
                                  cluster.namenode(), wl);
  runner.PrepareInputs(schedule);
  runner.SubmitAll(schedule);
  const auto result = runner.Run(cluster.sim().now() + bench::kRunDeadline);
  Outcome outcome;
  outcome.response_s = result.response_time_s;
  outcome.failed_jobs = result.failed;
  outcome.maps_reexecuted = cluster.jobtracker().maps_reexecuted();
  return outcome;
}

}  // namespace

int main() {
  std::printf("Ablation: failure-detection timeout under grid churn "
              "(§III.B; paper lowers ~15 min -> 30 s)\n\n");
  struct Case {
    const char* name;
    SimDuration recheck;
  };
  const Case cases[] = {
      {"HOG (30 s)", 30 * kSecond},
      {"2 min", 2 * kMinute},
      {"traditional (15 min)", 15 * kMinute},
  };
  TextTable table({"recheck", "response (s)", "failed jobs",
                   "maps re-executed"});
  std::vector<Outcome> outcomes;
  for (const Case& c : cases) {
    const Outcome o = Run(c.recheck);
    outcomes.push_back(o);
    table.AddRow({c.name, FormatDouble(o.response_s, 0),
                  std::to_string(o.failed_jobs),
                  std::to_string(o.maps_reexecuted)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: with 15-minute detection, every preemption parks "
      "task attempts and replicas on a dead node for up to 15 minutes "
      "before recovery starts, stretching (or wedging) the workload; 30 s "
      "detection recovers almost immediately.\n");
  std::printf("30 s detection fastest: %s\n",
              (outcomes[0].response_s <= outcomes[1].response_s &&
               outcomes[0].response_s <= outcomes[2].response_s)
                  ? "YES"
                  : "NO");
  return 0;
}
