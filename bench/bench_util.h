// Shared harness code for the paper-reproduction benches: spins up a HOG
// deployment or the Table III cluster, replays the Facebook workload, and
// returns the paper's metrics.
#pragma once

#include <string>
#include <utility>

#include "src/baseline/dedicated_cluster.h"
#include "src/hog/hog_cluster.h"
#include "src/util/stats.h"
#include "src/workload/facebook.h"
#include "src/workload/runner.h"

namespace hogsim::bench {

constexpr SimTime kSpinUpDeadline = 4 * kHour;
constexpr SimTime kRunDeadline = 12 * kHour;

/// Seeds for the paper's "3 runs at each sampling point".
constexpr std::uint64_t kSeeds[] = {11, 23, 47};

struct HogRunResult {
  bool reached_target = false;
  int nodes_at_start = 0;
  workload::WorkloadResult workload;
  double area_beneath_curve = 0;  // Table IV metric (node-seconds)
  double mean_reported_nodes = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t maps_reexecuted = 0;
  StepSeries reported_nodes;  // Fig. 5 trace over the workload window
  SimTime window_start = 0;
  SimTime window_end = 0;
};

/// Runs the full 88-job Facebook workload on a HOG deployment of
/// `max_nodes` glideins: wait for the configured maximum (falling back to
/// 95% under churn, as an operator would), then replay the schedule.
inline HogRunResult RunHogWorkload(int max_nodes, std::uint64_t seed,
                                   hog::HogConfig config = {}) {
  HogRunResult result;
  hog::HogCluster cluster(seed, std::move(config));
  cluster.RequestNodes(max_nodes);
  result.reached_target =
      cluster.WaitForNodes(max_nodes, kSpinUpDeadline) ||
      cluster.WaitForNodes(max_nodes * 95 / 100,
                           cluster.sim().now() + kSpinUpDeadline);
  if (!result.reached_target) return result;
  result.nodes_at_start = cluster.grid().running_nodes();

  Rng rng(seed);
  workload::WorkloadConfig wl;
  const auto schedule = workload::GenerateFacebookSchedule(rng, wl);
  workload::WorkloadRunner runner(cluster.sim(), cluster.jobtracker(),
                                  cluster.namenode(), wl);
  runner.PrepareInputs(schedule);
  cluster.StartAvailabilityTrace();
  const std::uint64_t preempt_before = cluster.grid().preemptions();
  result.window_start = cluster.sim().now();
  runner.SubmitAll(schedule);
  result.workload = runner.Run(cluster.sim().now() + kRunDeadline);
  result.window_end =
      result.window_start + FromSeconds(result.workload.response_time_s);
  result.preemptions = cluster.grid().preemptions() - preempt_before;
  result.maps_reexecuted = cluster.jobtracker().maps_reexecuted();
  result.reported_nodes = cluster.reported_nodes();
  result.area_beneath_curve = cluster.reported_nodes().AreaUnder(
      result.window_start, result.window_end);
  result.mean_reported_nodes = cluster.reported_nodes().MeanOver(
      result.window_start, result.window_end);
  return result;
}

/// Runs the workload on the dedicated Table III cluster.
inline workload::WorkloadResult RunClusterWorkload(std::uint64_t seed) {
  baseline::DedicatedCluster cluster(seed);
  Rng rng(seed);
  workload::WorkloadConfig wl;
  const auto schedule = workload::GenerateFacebookSchedule(rng, wl);
  workload::WorkloadRunner runner(cluster.sim(), cluster.jobtracker(),
                                  cluster.namenode(), wl);
  runner.PrepareInputs(schedule);
  runner.SubmitAll(schedule);
  return runner.Run(kRunDeadline);
}

}  // namespace hogsim::bench
