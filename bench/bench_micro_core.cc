// Microbenchmarks (google-benchmark) for the simulation substrate: event
// queue throughput, flow-network sharing policies, disk fair queue, and
// namenode placement. These bound how large a HOG experiment the simulator
// can run per wall-clock second.
//
// After the google-benchmark suite, an exp::Sweep of the core event-queue
// scenarios (schedule+fire, cancel-heavy, heartbeat cancel/re-arm) runs
// across seeds and writes BENCH_core.json — the machine-readable perf
// baseline future PRs regress against.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "src/exp/sweep.h"
#include "src/hdfs/datanode.h"
#include "src/hdfs/namenode.h"
#include "src/hdfs/placement.h"
#include "src/hdfs/topology.h"
#include "src/net/flow_network.h"
#include "src/sim/simulation.h"
#include "src/storage/disk.h"
#include "src/util/rng.h"

namespace hogsim {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    Rng rng(1);
    for (int i = 0; i < n; ++i) {
      sim.ScheduleAt(rng.UniformInt(0, 1'000'000), [] {});
    }
    sim.RunAll();
    benchmark::DoNotOptimize(sim.executed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(65536);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    std::vector<sim::EventHandle> handles;
    handles.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      handles.push_back(sim.ScheduleAt(i, [] {}));
    }
    for (int i = 0; i < n; i += 2) {
      sim.Cancel(handles[static_cast<std::size_t>(i)]);
    }
    sim.RunAll();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(65536);

void BM_EventQueueCancelReArm(benchmark::State& state) {
  // Heartbeat-timeout pattern: cancel the pending expiry and re-arm it far
  // in the future, every 30 s of simulated time. Exercises slot reuse and
  // heap compaction; the old queue grew linearly with simulated time here.
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    sim::EventHandle timeout;
    for (int i = 0; i < n; ++i) {
      sim.Cancel(timeout);
      timeout = sim.ScheduleAfter(10 * kMinute, [] {});
      sim.RunUntil(sim.now() + 30 * kSecond);
    }
    benchmark::DoNotOptimize(sim.queued());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueCancelReArm)->Arg(65536);

void RunFlowChurn(net::SharingPolicy policy, int sites, int nodes_per_site,
                  int flows) {
  sim::Simulation sim;
  net::FlowNetworkConfig config;
  config.sharing = policy;
  net::FlowNetwork net(sim, config);
  Rng rng(7);
  std::vector<net::NodeId> nodes;
  for (int s = 0; s < sites; ++s) {
    const net::SiteId site = net.AddSite(Gbps(2));
    for (int n = 0; n < nodes_per_site; ++n) {
      nodes.push_back(net.AddNode(site, Gbps(1)));
    }
  }
  for (int f = 0; f < flows; ++f) {
    const auto src = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(nodes.size()) - 1));
    auto dst = src;
    while (dst == src) {
      dst = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(nodes.size()) - 1));
    }
    sim.ScheduleAt(rng.UniformInt(0, 10 * kSecond), [&, src, dst] {
      net.StartFlow(nodes[src], nodes[dst], 16 * kMiB, [](bool) {});
    });
  }
  sim.RunAll();
}

void BM_FlowNetworkEvenShare(benchmark::State& state) {
  for (auto _ : state) {
    RunFlowChurn(net::SharingPolicy::kEvenShare, 5, 40,
                 static_cast<int>(state.range(0)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FlowNetworkEvenShare)->Arg(512)->Arg(4096);

void BM_FlowNetworkMaxMin(benchmark::State& state) {
  for (auto _ : state) {
    RunFlowChurn(net::SharingPolicy::kMaxMinFair, 5, 40,
                 static_cast<int>(state.range(0)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FlowNetworkMaxMin)->Arg(512);

void BM_DiskFairQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    storage::Disk disk(sim, kTiB, MiBps(100));
    Rng rng(3);
    for (int i = 0; i < state.range(0); ++i) {
      sim.ScheduleAt(rng.UniformInt(0, kSecond), [&] {
        disk.Read(4 * kMiB, [] {});
      });
    }
    sim.RunAll();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DiskFairQueue)->Arg(256)->Arg(2048);

struct PlacementFixture {
  sim::Simulation sim;
  net::FlowNetwork net{sim};
  std::unique_ptr<hdfs::Namenode> nn;
  std::vector<std::unique_ptr<storage::Disk>> disks;
  std::vector<std::unique_ptr<hdfs::Datanode>> daemons;

  explicit PlacementFixture(int sites, int per_site, bool site_aware) {
    const net::NodeId master = net.AddNode(net.AddSite(Gbps(10)), Gbps(1));
    hdfs::HdfsConfig config;
    config.default_replication = 10;
    nn = std::make_unique<hdfs::Namenode>(
        sim, net, master, hdfs::SiteAwarenessScript(),
        site_aware ? hdfs::MakeSiteAwarePlacement()
                   : hdfs::MakeDefaultPlacement(),
        Rng(5), config);
    nn->Start();
    for (int s = 0; s < sites; ++s) {
      const net::SiteId site = net.AddSite(Gbps(2));
      for (int n = 0; n < per_site; ++n) {
        disks.push_back(
            std::make_unique<storage::Disk>(sim, kTiB, MiBps(60)));
        daemons.push_back(std::make_unique<hdfs::Datanode>(
            sim, net, *nn, "w" + std::to_string(n) + ".s" +
                              std::to_string(s) + ".edu",
            net.AddNode(site, Gbps(1)), *disks.back()));
        daemons.back()->Start();
      }
    }
  }
};

void BM_NamenodeSiteAwarePlacement(benchmark::State& state) {
  PlacementFixture fx(5, static_cast<int>(state.range(0)) / 5, true);
  int i = 0;
  for (auto _ : state) {
    fx.nn->ImportFile("f" + std::to_string(i++), 64 * kMiB);
  }
  state.SetItemsProcessed(state.iterations() * 10);  // replicas placed
}
BENCHMARK(BM_NamenodeSiteAwarePlacement)->Arg(100)->Arg(1000);

void BM_NamenodeBlockLocations(benchmark::State& state) {
  PlacementFixture fx(5, 40, true);
  const auto file = fx.nn->ImportFile("f", 64 * 64 * kMiB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.nn->GetFileBlocks(file));
  }
}
BENCHMARK(BM_NamenodeBlockLocations);

// --- exp::Sweep perf baseline: BENCH_core.json ---

exp::Metrics CoreSweepRun(std::size_t config, std::uint64_t seed) {
  constexpr int kEvents = 200'000;
  sim::Simulation sim;
  Rng rng(seed);
  std::size_t peak_queued = 0;
  const auto start = std::chrono::steady_clock::now();
  switch (config) {
    case 0:  // schedule + fire
      for (int i = 0; i < kEvents; ++i) {
        sim.ScheduleAt(rng.UniformInt(0, 1'000'000), [] {});
      }
      sim.RunAll();
      break;
    case 1: {  // schedule, cancel half, fire the rest
      std::vector<sim::EventHandle> handles;
      handles.reserve(kEvents);
      for (int i = 0; i < kEvents; ++i) {
        handles.push_back(sim.ScheduleAt(rng.UniformInt(0, 1'000'000), [] {}));
      }
      for (int i = 0; i < kEvents; i += 2) {
        sim.Cancel(handles[static_cast<std::size_t>(i)]);
      }
      sim.RunAll();
      break;
    }
    default: {  // heartbeat cancel/re-arm loop
      sim::EventHandle timeout;
      for (int i = 0; i < kEvents / 4; ++i) {
        sim.Cancel(timeout);
        timeout = sim.ScheduleAfter(10 * kMinute, [] {});
        sim.RunUntil(sim.now() + 30 * kSecond);
        peak_queued = std::max(peak_queued, sim.queued());
      }
      break;
    }
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const double ops =
      static_cast<double>(sim.executed() + sim.cancelled()) +
      static_cast<double>(config == 2 ? kEvents / 4 : kEvents);
  return {{"wall_s", wall_s},
          {"ops_per_sec", wall_s > 0 ? ops / wall_s : 0.0},
          {"executed", static_cast<double>(sim.executed())},
          {"cancelled", static_cast<double>(sim.cancelled())},
          {"compactions", static_cast<double>(sim.compactions())},
          {"peak_queued", static_cast<double>(peak_queued)}};
}

void WriteCoreBaseline() {
  exp::SweepSpec spec;
  spec.name = "core";
  spec.seeds = {1, 2, 3, 4, 5};
  spec.configs = 3;
  spec.config_labels = {"schedule_fire", "cancel_heavy", "cancel_rearm"};
  const exp::SweepResult result = exp::RunSweep(spec, CoreSweepRun);
  if (exp::WriteBenchJson("BENCH_core.json", spec, result)) {
    std::printf("\nBENCH_core.json: %zu runs (%zu configs x %zu seeds)\n",
                result.runs.size(), spec.configs, spec.seeds.size());
    for (std::size_t c = 0; c < result.summaries.size(); ++c) {
      for (const exp::MetricSummary& m : result.summaries[c]) {
        if (m.name != "ops_per_sec") continue;
        std::printf("  %-13s ops/sec mean %.3g (min %.3g, max %.3g)\n",
                    spec.config_labels[c].c_str(), m.stats.mean(),
                    m.stats.min(), m.stats.max());
      }
    }
  }
}

}  // namespace
}  // namespace hogsim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  hogsim::WriteCoreBaseline();
  return 0;
}
