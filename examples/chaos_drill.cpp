// Chaos drill: run a job through a declarative fault scenario
// (src/fault). The default scenario, scenarios/site_storm.txt, reenacts
// the §III.B.1 site-failure drill and worse — 80% of a site preempted
// with zombies left behind, acquisition frozen and throttled, a second
// site half-evicted with its WAN uplink degraded, plus steady background
// churn — and this drill verifies HOG absorbs all of it: replicas
// re-replicated, lost maps re-executed, no data missing.
//
//   example_chaos_drill [scenario-file]      (run from the repo root)
#include <cstdio>
#include <exception>

#include "src/exp/paper_runs.h"
#include "src/hog/hog_cluster.h"
#include "src/workload/runner.h"

using namespace hogsim;

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "scenarios/site_storm.txt";
  fault::Scenario scenario;
  try {
    scenario = fault::LoadScenarioFile(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n(run from the repo root, or pass a scenario "
                 "file as the first argument)\n", e.what());
    return 2;
  }
  std::printf("Scenario '%s': %zu action(s)\n", scenario.name.c_str(),
              scenario.actions.size());

  hog::HogCluster hog(/*seed=*/99);
  hog.RequestNodes(80);
  if (!hog.WaitForNodes(78, 4 * kHour)) return 1;

  const hdfs::FileId input = hog.namenode().ImportFile("drill-data",
                                                       60 * 64 * kMiB);
  std::printf("Input loaded: %zu blocks, replication %d, site-aware "
              "placement '%s'\n",
              hog.namenode().GetFileBlocks(input).size(),
              hog.config().replication, hog.namenode().policy().name().c_str());

  mr::JobSpec spec;
  spec.name = "drill-job";
  spec.input = input;
  spec.num_reduces = 15;
  const mr::JobId job = hog.jobtracker().SubmitJob(spec);

  // Arm at submission: the scenario's clock starts now, so "at 120s" in
  // the file means two minutes into the job.
  const auto injector = exp::ArmScenario(hog, scenario);

  workload::RunSimUntil(hog.sim(),
                        [&] { return hog.jobtracker().AllJobsDone(); },
                        hog.sim().now() + 8 * kHour);

  const mr::JobInfo& info = hog.jobtracker().job(job);
  std::printf("\nJob '%s': %s in %s\n", info.spec.name.c_str(),
              info.state == mr::JobState::kSucceeded ? "SUCCEEDED" : "FAILED",
              FormatDuration(info.ResponseTime()).c_str());
  std::printf("  faults injected: %llu (skipped: %llu)\n",
              static_cast<unsigned long long>(injector->injected()),
              static_cast<unsigned long long>(injector->skipped()));
  std::printf("  trackers lost: %llu, maps re-executed: %llu\n",
              static_cast<unsigned long long>(
                  hog.jobtracker().trackers_declared_lost()),
              static_cast<unsigned long long>(
                  hog.jobtracker().maps_reexecuted()));
  std::printf("  namenode: %llu re-replications (%s), missing blocks: %zu\n",
              static_cast<unsigned long long>(
                  hog.namenode().replications_completed()),
              FormatBytes(hog.namenode().replication_bytes()).c_str(),
              hog.namenode().missing_blocks());
  std::printf("  grid self-healed back to %d workers (%d zombies left)\n",
              hog.grid().running_nodes(), hog.grid().zombie_nodes());
  const bool clean = info.state == mr::JobState::kSucceeded &&
                     hog.namenode().missing_blocks() == 0;
  std::printf("\n%s\n", clean
                            ? "Storm absorbed: no data loss, job completed "
                              "(replication 10 and site-aware placement "
                              "did their job)."
                            : "Drill FAILED");
  return clean ? 0 : 1;
}
