// Runs the paper's Facebook-derived workload (Tables I & II, §IV.A) on
// either the dedicated Table III cluster or a HOG deployment of a chosen
// size, and prints the workload response time plus per-bin latencies.
//
// Usage: example_facebook_workload [cluster|hog] [nodes] [seed]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "src/baseline/dedicated_cluster.h"
#include "src/hog/hog_cluster.h"
#include "src/util/table.h"
#include "src/workload/facebook.h"
#include "src/workload/runner.h"

using namespace hogsim;

namespace {

constexpr SimTime kDeadline = 12 * kHour;

void PrintResult(const std::string& label,
                 const workload::WorkloadResult& result) {
  std::printf("\n%s\n", label.c_str());
  std::printf("  workload response time: %.0f s (%s)\n",
              result.response_time_s,
              FormatDuration(FromSeconds(result.response_time_s)).c_str());
  std::printf("  jobs: %d succeeded, %d failed%s\n", result.succeeded,
              result.failed, result.completed ? "" : " (DEADLINE HIT)");
  TextTable table({"bin", "jobs", "mean response (s)", "max (s)"});
  for (const auto& [bin, stats] : result.per_bin_response_s) {
    table.AddRow({std::to_string(bin), std::to_string(stats.count()),
                  FormatDouble(stats.mean(), 1), FormatDouble(stats.max(), 1)});
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "cluster";
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 100;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  Rng rng(seed);
  const workload::WorkloadConfig wl_config;
  const auto schedule = workload::GenerateFacebookSchedule(rng, wl_config);
  std::printf("Facebook workload: %zu jobs over %s (mean gap 14 s)\n",
              schedule.size(),
              FormatDuration(schedule.back().submit_time).c_str());

  if (mode == "cluster") {
    baseline::DedicatedCluster cluster(seed);
    workload::WorkloadRunner runner(cluster.sim(), cluster.jobtracker(),
                                    cluster.namenode(), wl_config);
    runner.PrepareInputs(schedule);
    runner.SubmitAll(schedule);
    PrintResult("Dedicated cluster (Table III, 100 cores)",
                runner.Run(kDeadline));
  } else if (mode == "hog") {
    hog::HogCluster hog(seed);
    hog.RequestNodes(nodes);
    // The paper waits until the available nodes reach the configured
    // maximum; under heavy churn the full count may never hold at one
    // instant, so fall back to 95% before giving up.
    if (!hog.WaitForNodes(nodes, kHour) &&
        !hog.WaitForNodes(nodes * 95 / 100, hog.sim().now() + kHour)) {
      std::fprintf(stderr, "failed to reach %d nodes\n", nodes);
      return 1;
    }
    std::printf("HOG reached %d nodes at t=%s\n", hog.grid().running_nodes(),
                FormatDuration(hog.sim().now()).c_str());
    workload::WorkloadRunner runner(hog.sim(), hog.jobtracker(),
                                    hog.namenode(), wl_config);
    runner.PrepareInputs(schedule);
    hog.StartAvailabilityTrace();
    runner.SubmitAll(schedule);
    PrintResult("HOG with " + std::to_string(nodes) + " nodes",
                runner.Run(hog.sim().now() + kDeadline));
    std::printf("  preemptions during run: %llu\n",
                static_cast<unsigned long long>(hog.grid().preemptions()));
  } else {
    std::fprintf(stderr, "usage: %s [cluster|hog] [nodes] [seed]\n", argv[0]);
    return 2;
  }
  return 0;
}
