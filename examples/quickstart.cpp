// Quickstart: bring up HOG exactly the way the paper does — submit the
// Listing 1 Condor file (scaled down), wait for glideins, load a dataset
// into grid-wide HDFS, and run one MapReduce job.
#include <cstdio>

#include "src/grid/condor.h"
#include "src/hog/hog_cluster.h"
#include "src/workload/runner.h"

using namespace hogsim;

int main() {
  // 1. A HOG deployment: stable central server (namenode + jobtracker +
  //    package repository) plus the five OSG sites of the paper.
  hog::HogCluster hog(/*seed=*/2012);

  // 2. Request workers with a Condor submit description (Listing 1, with
  //    a smaller queue count). The requirements line restricts execution
  //    to sites with publicly reachable worker nodes.
  const grid::CondorSubmit submit = grid::ParseCondorSubmit(R"(
universe = vanilla
requirements = GLIDEIN_ResourceName =?= "FNAL_FERMIGRID" || GLIDEIN_ResourceName =?= "USCMS-FNAL-WC1" || GLIDEIN_ResourceName =?= "UCSDT2" || GLIDEIN_ResourceName =?= "AGLT2" || GLIDEIN_ResourceName =?= "MIT_CMS"
executable = wrapper.sh
should_transfer_files = YES
OnExitRemove = FALSE
x509userproxy = /tmp/x509up_u1384
queue 50
)");
  hog.Submit(submit);
  std::printf("Submitted %d glidein requests to %zu sites...\n",
              submit.queue_count, submit.resources.size());

  if (!hog.WaitForNodes(50, 4 * kHour)) {
    std::fprintf(stderr, "grid did not deliver 50 nodes\n");
    return 1;
  }
  std::printf("HOG is up: %d workers at t=%s (each: 1 map + 1 reduce slot, "
              "datanode with site-aware placement, replication %d)\n",
              hog.grid().running_nodes(),
              FormatDuration(hog.sim().now()).c_str(),
              hog.config().replication);

  // 3. Load input data into the grid-wide HDFS (16 blocks -> 16 maps).
  const hdfs::FileId input = hog.namenode().ImportFile("demo-input",
                                                       16 * 64 * kMiB);
  std::printf("Imported %s of input as %zu blocks, replication %d\n",
              FormatBytes(hog.namenode().FileSize(input)).c_str(),
              hog.namenode().GetFileBlocks(input).size(),
              hog.namenode().FileReplication(input));

  // 4. Run a MapReduce job. No API differences from stock Hadoop: a job is
  //    a JobSpec, exactly as on the dedicated cluster (§III.B.2).
  mr::JobSpec spec;
  spec.name = "quickstart-wordcount";
  spec.input = input;
  spec.num_reduces = 5;
  const mr::JobId job = hog.jobtracker().SubmitJob(spec);

  workload::RunSimUntil(hog.sim(),
                        [&] { return hog.jobtracker().AllJobsDone(); },
                        hog.sim().now() + 4 * kHour);

  const mr::JobInfo& info = hog.jobtracker().job(job);
  std::printf("\nJob '%s': %s\n", info.spec.name.c_str(),
              info.state == mr::JobState::kSucceeded ? "SUCCEEDED" : "FAILED");
  std::printf("  response time: %s\n",
              FormatDuration(info.ResponseTime()).c_str());
  std::printf("  maps: %d (node-local %d, site-local %d, remote %d)\n",
              info.maps_completed, info.data_local_maps, info.rack_local_maps,
              info.remote_maps);
  std::printf("  reduces: %d, output %s in HDFS\n", info.reduces_completed,
              FormatBytes(hog.namenode().FileSize(info.output_file)).c_str());
  std::printf("  grid preemptions survived: %llu\n",
              static_cast<unsigned long long>(hog.grid().preemptions()));
  return info.state == mr::JobState::kSucceeded ? 0 : 1;
}
