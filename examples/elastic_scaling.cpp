// Elastic scaling (§IV.C): grow a running HOG from 30 to 120 glideins by
// submitting more Condor jobs while a workload runs, use the HDFS balancer
// to push data onto the fresh (empty) nodes, then shrink back. Shows the
// namenode's view of capacity and the balancer's block moves.
#include <cstdio>

#include "src/hdfs/balancer.h"
#include "src/hog/hog_cluster.h"
#include "src/workload/runner.h"

using namespace hogsim;

namespace {

void PrintState(hog::HogCluster& hog, const char* phase) {
  Bytes used = 0, cap = 0;
  int counted = 0;
  for (auto id : hog.grid().RunningNodeIds()) {
    const auto& disk = hog.grid().node(id)->disk();
    used += disk.used();
    cap += disk.capacity();
    ++counted;
  }
  std::printf("[%8s] t=%-8s workers=%-4d hdfs-used=%-9s of %-9s "
              "under-replicated=%zu\n",
              phase, FormatDuration(hog.sim().now()).c_str(), counted,
              FormatBytes(used).c_str(), FormatBytes(cap).c_str(),
              hog.namenode().under_replicated());
}

}  // namespace

int main() {
  hog::HogCluster hog(/*seed=*/7);

  // Start small.
  hog.RequestNodes(30);
  if (!hog.WaitForNodes(30, 4 * kHour)) return 1;
  const hdfs::FileId input = hog.namenode().ImportFile("data", 40 * 64 * kMiB);
  (void)input;
  PrintState(hog, "small");

  // Grow: "If users want to increase the number of nodes in the HOG, they
  // can submit more Condor jobs for extra nodes."
  hog.RequestNodes(120);
  if (!hog.WaitForNodes(110, hog.sim().now() + 4 * kHour)) return 1;
  PrintState(hog, "grown");

  // "They can use the HDFS balancer to balance the data distribution."
  hdfs::BalancerConfig bal_config;
  bal_config.threshold = 0.001;  // demo dataset is small relative to disks
  bal_config.max_concurrent_moves = 10;
  hdfs::Balancer balancer(hog.namenode(), bal_config);
  balancer.Start();
  hog.sim().RunUntil(hog.sim().now() + 30 * kMinute);
  balancer.Stop();
  std::printf("balancer: %llu block moves, %s shifted to new nodes\n",
              static_cast<unsigned long long>(balancer.moves_completed()),
              FormatBytes(balancer.bytes_moved()).c_str());
  PrintState(hog, "balanced");

  // Run a job at full size.
  mr::JobSpec spec;
  spec.name = "elastic-job";
  spec.input = input;
  spec.num_reduces = 10;
  hog.jobtracker().SubmitJob(spec);
  workload::RunSimUntil(hog.sim(),
                        [&] { return hog.jobtracker().AllJobsDone(); },
                        hog.sim().now() + 4 * kHour);
  PrintState(hog, "ran-job");

  // Shrink: removing worker-node jobs releases grid resources. An abrupt
  // 120 -> 40 condor_rm can evict every replica of a block faster than the
  // replication monitor copies it away — exactly the open problem §VI
  // flags ("to shrink and grow HOG, we need to consider how the data
  // blocks will be moved and replicated"). A careful operator shrinks in
  // stages, letting re-replication catch up between steps.
  for (int target : {90, 65, 40}) {
    hog.RequestNodes(target);
    hog.RunUntil([&] { return hog.grid().running_nodes() <= target; },
                 hog.sim().now() + kHour);
    // Give the namenode time to notice the departures (heartbeat recheck),
    // then wait for the replication monitor to drain the deficit.
    hog.sim().RunUntil(hog.sim().now() + 2 * hog.config().heartbeat_recheck);
    hog.RunUntil([&] { return hog.namenode().under_replicated() == 0; },
                 hog.sim().now() + 2 * kHour);
    std::printf("  staged shrink to %d: under-replicated drained, missing "
                "blocks: %zu\n",
                target, hog.namenode().missing_blocks());
  }
  PrintState(hog, "shrunk");
  std::printf("missing blocks after staged shrink: %zu (replication %d plus "
              "staging keeps data safe through the contraction)\n",
              hog.namenode().missing_blocks(), hog.config().replication);
  return hog.namenode().missing_blocks() == 0 ? 0 : 1;
}
