// The abandoned-daemon story of §IV.D.1, told end to end: run HOG where
// preemptions let double-forked daemons escape the kill, first without the
// working-directory probe (first-iteration HOG: zombies accumulate, tasks
// fail on them, clients waste read timeouts) and then with the 3-minute
// probe fix (zombies shut themselves down).
#include <cstdio>

#include "src/hog/hog_cluster.h"
#include "src/workload/runner.h"

using namespace hogsim;

namespace {

struct DrillResult {
  double response_s = 0;
  std::uint64_t zombie_events = 0;
  int zombies_left = 0;
  bool ok = false;
};

DrillResult Run(bool with_fix) {
  hog::HogConfig config;
  config.grid.zombie_probability = 0.7;  // most preemptions escape the kill
  config.disk_check_interval = with_fix ? 3 * kMinute : 0;
  config.sites = hog::DefaultOsgSites();
  for (auto& site : config.sites) site.node_mtbf_s = 1800.0;
  hog::HogCluster hog(/*seed=*/5, config);
  hog.RequestNodes(40);
  DrillResult result;
  if (!hog.WaitForNodes(38, 4 * kHour)) return result;

  const hdfs::FileId input = hog.namenode().ImportFile("z-data",
                                                       30 * 64 * kMiB);
  mr::JobSpec spec;
  spec.name = "zombie-drill";
  spec.input = input;
  spec.num_reduces = 10;
  const mr::JobId job = hog.jobtracker().SubmitJob(spec);
  workload::RunSimUntil(hog.sim(),
                        [&] { return hog.jobtracker().AllJobsDone(); },
                        hog.sim().now() + 8 * kHour);
  result.response_s = ToSeconds(hog.jobtracker().job(job).ResponseTime());
  result.zombie_events = hog.grid().zombie_events();
  result.zombies_left = hog.grid().zombie_nodes();
  result.ok = hog.jobtracker().job(job).state == mr::JobState::kSucceeded;
  return result;
}

}  // namespace

int main() {
  std::printf("§IV.D.1 drill: double-forked daemons escaping preemption\n\n");
  const DrillResult buggy = Run(/*with_fix=*/false);
  std::printf("WITHOUT the fix: job %s in %.0f s; %llu zombie preemptions, "
              "%d zombies still haunting the pool at the end\n",
              buggy.ok ? "succeeded" : "FAILED", buggy.response_s,
              static_cast<unsigned long long>(buggy.zombie_events),
              buggy.zombies_left);
  const DrillResult fixed = Run(/*with_fix=*/true);
  std::printf("WITH the 3-min working-directory probe: job %s in %.0f s; "
              "%llu zombie preemptions, %d remaining (they shut themselves "
              "down)\n",
              fixed.ok ? "succeeded" : "FAILED", fixed.response_s,
              static_cast<unsigned long long>(fixed.zombie_events),
              fixed.zombies_left);
  std::printf("\nZombies accumulate without the fix, drain with it: %s\n",
              (buggy.zombies_left > fixed.zombies_left) ? "YES" : "NO");
  return 0;
}
