// Site-failure drill (§III.B.1): run a job while an entire OSG site — a
// whole administrative failure domain — goes dark, the exact scenario
// HOG's site awareness exists for. Watches the namenode re-replicate and
// the jobtracker re-execute lost work, and verifies no data is lost.
#include <cstdio>

#include "src/hog/hog_cluster.h"
#include "src/workload/runner.h"

using namespace hogsim;

int main() {
  hog::HogCluster hog(/*seed=*/99);
  hog.RequestNodes(80);
  if (!hog.WaitForNodes(78, 4 * kHour)) return 1;

  const hdfs::FileId input = hog.namenode().ImportFile("drill-data",
                                                       60 * 64 * kMiB);
  std::printf("Input loaded: %zu blocks, replication %d, site-aware "
              "placement '%s'\n",
              hog.namenode().GetFileBlocks(input).size(),
              hog.config().replication, hog.namenode().policy().name().c_str());

  mr::JobSpec spec;
  spec.name = "drill-job";
  spec.input = input;
  spec.num_reduces = 15;
  const mr::JobId job = hog.jobtracker().SubmitJob(spec);

  // Two minutes in: FNAL_FERMIGRID suffers "a core network component
  // failure" — every glidein there disappears simultaneously.
  hog.sim().ScheduleAfter(2 * kMinute, [&] {
    const int before = hog.grid().running_nodes();
    hog.grid().PreemptSiteFraction(0, 1.0);
    std::printf("t=%s: SITE OUTAGE at %s — %d -> %d workers\n",
                FormatDuration(hog.sim().now()).c_str(),
                hog.grid().site_config(0).resource_name.c_str(), before,
                hog.grid().running_nodes());
  });

  workload::RunSimUntil(hog.sim(),
                        [&] { return hog.jobtracker().AllJobsDone(); },
                        hog.sim().now() + 8 * kHour);

  const mr::JobInfo& info = hog.jobtracker().job(job);
  std::printf("\nJob '%s': %s in %s\n", info.spec.name.c_str(),
              info.state == mr::JobState::kSucceeded ? "SUCCEEDED" : "FAILED",
              FormatDuration(info.ResponseTime()).c_str());
  std::printf("  trackers lost: %llu, maps re-executed: %llu\n",
              static_cast<unsigned long long>(
                  hog.jobtracker().trackers_declared_lost()),
              static_cast<unsigned long long>(
                  hog.jobtracker().maps_reexecuted()));
  std::printf("  namenode: %llu re-replications (%s), missing blocks: %zu\n",
              static_cast<unsigned long long>(
                  hog.namenode().replications_completed()),
              FormatBytes(hog.namenode().replication_bytes()).c_str(),
              hog.namenode().missing_blocks());
  std::printf("  grid self-healed back to %d workers\n",
              hog.grid().running_nodes());
  const bool clean = info.state == mr::JobState::kSucceeded &&
                     hog.namenode().missing_blocks() == 0;
  std::printf("\n%s\n", clean
                            ? "Site failure absorbed: no data loss, job "
                              "completed (the multi-institution failure "
                              "domains did their job)."
                            : "Drill FAILED");
  return clean ? 0 : 1;
}
